//===- tests/FaultTest.cpp - Fault injection & client resilience ----------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the fault-injection layer (sim/Network.h FaultPolicy), the
/// resilient RPC client (dfs/RpcClientBase.h RetryPolicy), the server's
/// duplicate-request cache and crash recovery under in-flight operations.
/// The timing assertions are exact: retransmit timers are deterministic,
/// and with DropProbability 1.0 the fault rolls are too, so the backoff
/// train's arithmetic is checked to the nanosecond.
///
//===----------------------------------------------------------------------===//

#include "dmetabench/DMetabench.h"
#include <algorithm>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

using namespace dmb;

namespace {

/// Submits \p Req and runs the simulation until the reply arrives.
MetaReply runSync(Scheduler &S, ClientFs &C, MetaRequest Req) {
  MetaReply Out;
  bool Got = false;
  C.submit(Req, [&](MetaReply R) {
    Out = std::move(R);
    Got = true;
  });
  S.run();
  EXPECT_TRUE(Got) << "operation did not complete";
  return Out;
}

/// Creates an empty file through the client (open/close).
FsError touch(Scheduler &S, ClientFs &C, const std::string &Path) {
  MetaReply R = runSync(S, C, makeOpen(Path, OpenWrite | OpenCreate));
  if (!R.ok())
    return R.Err;
  return runSync(S, C, makeClose(R.Fh)).Err;
}

//===----------------------------------------------------------------------===//
// NetworkLink accounting and fault rolls
//===----------------------------------------------------------------------===//

TEST(Network, PlanAccountsTrafficWithoutScheduling) {
  Scheduler S;
  NetConfig Cfg;
  Cfg.OneWayLatency = microseconds(200);
  Cfg.BytesPerSecond = 1e6;
  NetworkLink L(S, Cfg);

  NetworkLink::Delivery D = L.plan(1000);
  EXPECT_FALSE(D.Dropped);
  // 200 us latency + 1000 B / 1 MB/s = 1 ms serialization.
  EXPECT_EQ(microseconds(200) + milliseconds(1), D.Delay);
  EXPECT_EQ(D.Delay, L.transferTime(1000));
  EXPECT_EQ(1u, L.messagesSent());
  EXPECT_EQ(1000u, L.bytesSent());
  EXPECT_EQ(0u, L.messagesDropped());
  EXPECT_EQ(0u, L.messagesDelayed());

  // plan() only accounts; nothing was scheduled.
  S.run();
  EXPECT_EQ(0, S.now());
}

TEST(Network, WindowDropsAreExactAndCounted) {
  Scheduler S;
  NetConfig Cfg;
  Cfg.Faults.Windows = {{milliseconds(1), milliseconds(2), 1.0}};
  NetworkLink L(S, Cfg);

  bool MidWindowDropped = false, BeforeDropped = true, AtEndDropped = true;
  S.at(microseconds(500), [&] { BeforeDropped = L.plan(0).Dropped; });
  S.at(microseconds(1500), [&] { MidWindowDropped = L.plan(0).Dropped; });
  // The window is half-open: a message at End is delivered.
  S.at(milliseconds(2), [&] { AtEndDropped = L.plan(0).Dropped; });
  S.run();

  EXPECT_FALSE(BeforeDropped);
  EXPECT_TRUE(MidWindowDropped);
  EXPECT_FALSE(AtEndDropped);
  EXPECT_EQ(3u, L.messagesSent());
  EXPECT_EQ(1u, L.messagesDropped());
}

TEST(Network, FaultRollsArePureFunctionsOfSeedAndTime) {
  Scheduler S;
  NetConfig Cfg;
  Cfg.Faults.Seed = 42;
  Cfg.Faults.DropProbability = 0.5;
  Cfg.Faults.DelayJitterMax = microseconds(50);
  NetConfig Reseeded = Cfg;
  Reseeded.Faults.Seed = 43;

  NetworkLink A(S, Cfg);
  NetworkLink B(S, Cfg);
  NetworkLink C(S, Reseeded);

  // Sample the links over distinct send times. The roll depends only on
  // (seed, time) — never on link identity or on how many messages a link
  // has carried — which is what keeps faulted scenarios invariant when
  // schedule perturbation reassigns symmetric operations across links.
  // A different seed decorrelates.
  std::vector<bool> DropsA, DropsB, DropsC;
  for (int I = 1; I <= 64; ++I)
    S.at(microseconds(I), [&] {
      NetworkLink::Delivery DA = A.plan(0);
      NetworkLink::Delivery DB = B.plan(0);
      DropsA.push_back(DA.Dropped);
      DropsB.push_back(DB.Dropped);
      DropsC.push_back(C.plan(0).Dropped);
      EXPECT_EQ(DA.Dropped, DB.Dropped);
      EXPECT_EQ(DA.Delay, DB.Delay);
      // Two messages on ONE link inside the same-timestamp event share
      // their fate: tie order cannot reassign the rolls.
      NetworkLink::Delivery DA2 = A.plan(0);
      EXPECT_EQ(DA.Dropped, DA2.Dropped);
      EXPECT_EQ(DA.Delay, DA2.Delay);
    });
  S.run();

  EXPECT_EQ(DropsA, DropsB);
  EXPECT_NE(DropsA, DropsC); // a different seed rolls different dice
  // With P = 0.5 over 64 draws both outcomes occur, and surviving
  // messages picked up jitter.
  EXPECT_GT(A.messagesDropped(), 0u);
  EXPECT_LT(A.messagesDropped(), A.messagesSent());
  EXPECT_GT(A.messagesDelayed(), 0u);
}

//===----------------------------------------------------------------------===//
// Client retry discipline
//===----------------------------------------------------------------------===//

TEST(Fault, RequestLossTriggersRetransmit) {
  Scheduler S;
  NfsOptions O;
  O.Client.Retry.Timeout = milliseconds(10);
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  // Drop every request sent in the first 5 ms: exactly the first attempt.
  FaultPolicy P;
  P.Windows = {{0, milliseconds(5), 1.0}};
  C->requestLink().setFaultPolicy(P);

  SimTime T0 = S.now();
  MetaReply R = runSync(S, *Client, makeMkdir("/d"));
  EXPECT_EQ(FsError::Ok, R.Err);
  EXPECT_EQ(1u, C->retransmits());
  EXPECT_EQ(0u, C->timedOutOps());
  EXPECT_EQ(2u, C->requestLink().messagesSent());
  EXPECT_EQ(1u, C->requestLink().messagesDropped());
  // The operation could not complete before the 10 ms retransmit timer.
  EXPECT_GE(S.now() - T0, milliseconds(10));
  EXPECT_EQ(1u, Fs.server().processedRequests());
}

TEST(Fault, ExhaustionReturnsTimedOutAfterExactBackoffTrain) {
  Scheduler S;
  NfsOptions O;
  O.Client.Retry.Timeout = milliseconds(1);
  O.Client.Retry.MaxRetransmits = 3;
  O.Client.Net.Faults.DropProbability = 1.0; // the link is dead
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  SimTime T0 = S.now();
  MetaReply R = runSync(S, *Client, makeOpen("/f", OpenWrite | OpenCreate));
  EXPECT_EQ(FsError::TimedOut, R.Err);
  // Doubling backoff: 1 + 2 + 4 + 8 ms, then the client gives up.
  EXPECT_EQ(T0 + milliseconds(15), S.now());
  EXPECT_EQ(3u, C->retransmits());
  EXPECT_EQ(1u, C->timedOutOps());
  EXPECT_EQ(4u, C->requestLink().messagesDropped());
  // Nothing ever reached the server.
  EXPECT_EQ(0u, Fs.server().processedRequests());
}

TEST(Fault, BackoffCapsAtMaxTimeout) {
  Scheduler S;
  NfsOptions O;
  O.Client.Retry.Timeout = milliseconds(1);
  O.Client.Retry.BackoffFactor = 10.0;
  O.Client.Retry.MaxTimeout = milliseconds(5);
  O.Client.Retry.MaxRetransmits = 3;
  O.Client.Net.Faults.DropProbability = 1.0;
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);

  SimTime T0 = S.now();
  MetaReply R = runSync(S, *Client, makeMkdir("/d"));
  EXPECT_EQ(FsError::TimedOut, R.Err);
  // 1 ms, then 10 ms saturates at the 5 ms cap: 1 + 5 + 5 + 5.
  EXPECT_EQ(T0 + milliseconds(16), S.now());
}

TEST(Fault, BackoffTrainIsExactInIntegerSimTime) {
  // A real client arms each retransmit timer from the previous timer's
  // tick-rounded value: T_{i+1} = floor(T_i * F). For a non-power-of-two
  // factor that sequence diverges from accumulating the whole train in a
  // double and truncating once — 5000 ns * 1.5^6 = 56953.125 rounds to
  // 56953, but the step-by-step train reaches floor(37968 * 1.5) = 56952.
  Scheduler S;
  NfsOptions O;
  O.Client.Retry.Timeout = nanoseconds(5000);
  O.Client.Retry.BackoffFactor = 1.5;
  O.Client.Retry.MaxTimeout = seconds(1);
  O.Client.Retry.MaxRetransmits = 6;
  O.Client.Net.Faults.DropProbability = 1.0; // the link is dead
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);

  SimTime T0 = S.now();
  MetaReply R = runSync(S, *Client, makeMkdir("/d"));
  EXPECT_EQ(FsError::TimedOut, R.Err);
  // 5000 + 7500 + 11250 + 16875 + 25312 + 37968 + 56952.
  EXPECT_EQ(T0 + nanoseconds(160857), S.now());
}

//===----------------------------------------------------------------------===//
// Duplicate-request cache
//===----------------------------------------------------------------------===//

TEST(Fault, ReplyLossHitsDuplicateRequestCache) {
  Scheduler S;
  NfsOptions O;
  O.Client.Retry.Timeout = milliseconds(10);
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  // Lose the first reply (sent ~0.3 ms in); the 10 ms retransmit lands
  // after the window and is answered from the DRC, not re-executed.
  FaultPolicy P;
  P.Windows = {{0, milliseconds(5), 1.0}};
  C->replyLink().setFaultPolicy(P);

  MetaReply R = runSync(S, *Client, makeOpen("/f", OpenWrite | OpenCreate));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(1u, C->retransmits());
  EXPECT_EQ(1u, C->replyLink().messagesDropped());
  EXPECT_EQ(1u, Fs.server().drcHits());
  // The replayed reply carries the handle of the single execution; it is
  // live and the file exists exactly once.
  EXPECT_EQ(FsError::Ok, runSync(S, *Client, makeClose(R.Fh)).Err);
  MetaReply St = runSync(S, *Client, makeStat("/f"));
  ASSERT_TRUE(St.ok());
  EXPECT_EQ(FileType::Regular, St.A.Type);
}

/// Unlinks "/f" with the first reply lost; returns the reply the client
/// finally saw. With a DRC the retransmit replays the original Ok; with
/// the DRC disabled it re-executes and observes NoEnt — the double-apply
/// hazard the cache exists to prevent.
MetaReply unlinkWithLostReply(unsigned DrcEntries, uint64_t &DrcHitsOut) {
  Scheduler S;
  NfsOptions O;
  O.Client.Retry.Timeout = milliseconds(10);
  O.Server.DuplicateRequestCacheSize = DrcEntries;
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  EXPECT_EQ(FsError::Ok, touch(S, *Client, "/f"));
  FaultPolicy P;
  P.Windows = {{S.now(), S.now() + milliseconds(5), 1.0}};
  C->replyLink().setFaultPolicy(P);
  MetaReply R = runSync(S, *Client, makeUnlink("/f"));
  EXPECT_EQ(1u, C->retransmits());
  DrcHitsOut = Fs.server().drcHits();
  return R;
}

TEST(Fault, RetransmittedUnlinkAnsweredFromCache) {
  uint64_t DrcHits = 0;
  MetaReply R = unlinkWithLostReply(/*DrcEntries=*/1024, DrcHits);
  EXPECT_EQ(FsError::Ok, R.Err);
  EXPECT_EQ(1u, DrcHits);
}

TEST(Fault, WithoutDrcRetransmittedUnlinkReexecutes) {
  uint64_t DrcHits = 0;
  MetaReply R = unlinkWithLostReply(/*DrcEntries=*/0, DrcHits);
  EXPECT_EQ(FsError::NoEnt, R.Err);
  EXPECT_EQ(0u, DrcHits);
}

//===----------------------------------------------------------------------===//
// Crash recovery with in-flight operations
//===----------------------------------------------------------------------===//

TEST(Fault, CrashWithInFlightOpsRecoversExactlyOnce) {
  Scheduler S;
  NfsOptions O;
  O.Client.Retry.Timeout = milliseconds(5);
  NfsFs Fs(S, O);
  Fs.server().enableJournal();
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  // Every pre-crash reply is lost, so all six operations ride their
  // retransmit timers across the outage.
  FaultPolicy P;
  P.Windows = {{0, milliseconds(2), 1.0}};
  C->replyLink().setFaultPolicy(P);

  // Requests arrive at ~100 us and execute eagerly; the crash at 250 us
  // catches some journal records committed and some not.
  ServerCrash Crash(S, *Fs.admin(), NfsFs::VolumeName, microseconds(250));

  constexpr unsigned N = 6;
  std::vector<MetaReply> Replies(N);
  unsigned Got = 0;
  for (unsigned I = 0; I < N; ++I)
    Client->submit(makeMkdir("/d" + std::to_string(I)),
                   [&Replies, &Got, I](MetaReply R) {
                     Replies[I] = std::move(R);
                     ++Got;
                   });
  S.run();

  ASSERT_EQ(N, Got);
  ASSERT_TRUE(Crash.fired());
  uint64_t Lost = Crash.lostRecords();
  ASSERT_LE(Lost, uint64_t(N));
  for (unsigned I = 0; I < N; ++I) {
    EXPECT_EQ(FsError::Ok, Replies[I].Err) << "/d" << I;
    EXPECT_NE(FsError::Exists, Replies[I].Err) << "double-applied /d" << I;
  }
  EXPECT_EQ(uint64_t(N), C->retransmits());
  EXPECT_EQ(0u, C->timedOutOps());
  // Committed mkdirs are answered from the journaled DRC; the ones whose
  // records died with the crash re-execute against the replayed volume.
  EXPECT_EQ(uint64_t(N) - Lost, Fs.server().drcHits());

  // Every directory exists exactly once and the store is consistent.
  for (unsigned I = 0; I < N; ++I) {
    MetaReply St = runSync(S, *Client, makeStat("/d" + std::to_string(I)));
    ASSERT_TRUE(St.ok()) << "/d" << I;
    EXPECT_EQ(FileType::Directory, St.A.Type);
  }
  LocalFileSystem *V = Fs.server().volume(NfsFs::VolumeName);
  ASSERT_NE(nullptr, V);
  EXPECT_TRUE(V->fsck().clean());
}

//===----------------------------------------------------------------------===//
// DRC eviction-queue regressions
//===----------------------------------------------------------------------===//

/// Executes an xid-stamped mkdir eagerly on \p Srv — the raw server-side
/// retransmit path, with no client or network in between.
MetaReply eagerMkdir(FileServer &Srv, const std::string &Vol,
                     const std::string &Path, uint64_t Xid) {
  MetaRequest R = makeMkdir(Path);
  R.ClientId = 1;
  R.Xid = Xid;
  return Srv.processEager(Vol, R, [] {});
}

TEST(Fault, CrashPrunedDrcKeysDoNotEvictLiveEntries) {
  // Regression: crash pruning used to erase DRC entries but leave their
  // keys in the eviction queue. A later re-execution of the same (ClientId,
  // Xid) re-pushed the key, so the queue held it twice — and when eviction
  // reached the stale first push it erased the *live* entry, breaking
  // retransmit exactly-once semantics while the entry should still have
  // been cached.
  Scheduler S;
  ServerConfig Cfg;
  Cfg.DuplicateRequestCacheSize = 2;
  FileServer Srv(S, Cfg);
  Srv.enableJournal();
  Srv.addVolume("v");

  // Two xid-stamped mkdirs; the scheduler never runs, so their journal
  // records stay uncommitted and the crash prunes both DRC entries.
  EXPECT_EQ(FsError::Ok, eagerMkdir(Srv, "v", "/k1", 1).Err);
  EXPECT_EQ(FsError::Ok, eagerMkdir(Srv, "v", "/k2", 2).Err);
  EXPECT_EQ(2u, Srv.drcSize());
  EXPECT_EQ(2u, Srv.drcEvictQueueSize());

  EXPECT_EQ(2u, Srv.crashAndRecover("v"));
  EXPECT_EQ(0u, Srv.drcSize());
  // The pruned keys must leave the queue with their entries.
  EXPECT_EQ(0u, Srv.drcEvictQueueSize());

  // Both clients retransmit; the recovered store lost the mkdirs, so they
  // re-execute (Ok) and re-enter the cache — /k2 first, so /k1 is the
  // *younger* entry.
  EXPECT_EQ(FsError::Ok, eagerMkdir(Srv, "v", "/k2", 2).Err);
  EXPECT_EQ(FsError::Ok, eagerMkdir(Srv, "v", "/k1", 1).Err);
  EXPECT_EQ(2u, Srv.drcSize());
  EXPECT_EQ(2u, Srv.drcEvictQueueSize());

  // A third insert evicts exactly one entry: the oldest (/k2), never /k1.
  // Pre-fix, /k1's crash-orphaned first push sat at the queue front and
  // the eviction erased the live /k1 entry instead.
  uint64_t HitsBefore = Srv.drcHits();
  EXPECT_EQ(FsError::Ok, eagerMkdir(Srv, "v", "/k3", 3).Err);
  EXPECT_EQ(2u, Srv.drcSize());
  EXPECT_EQ(2u, Srv.drcEvictQueueSize());

  // The /k1 retransmit must replay the cached Ok. Pre-fix it missed the
  // evicted entry, re-executed, and observed Exists — a double-apply made
  // visible to the client.
  MetaReply R = eagerMkdir(Srv, "v", "/k1", 1);
  EXPECT_EQ(FsError::Ok, R.Err);
  EXPECT_EQ(HitsBefore + 1, Srv.drcHits());
}

TEST(Fault, DrcEvictQueueStaysBoundedAcrossCrashCycles) {
  // Regression: with crash-pruned keys left behind, the eviction queue
  // grew by one dead key per pruned entry on every crash/recover cycle —
  // unbounded state on a server whose cache is supposed to be capacity-
  // bounded. Ten cycles of (fill cache, crash) must leave the queue no
  // larger than the capacity, and exactly in sync with the map.
  Scheduler S;
  ServerConfig Cfg;
  Cfg.DuplicateRequestCacheSize = 4;
  FileServer Srv(S, Cfg);
  Srv.enableJournal();
  Srv.addVolume("v");

  uint64_t Xid = 0;
  for (unsigned Cycle = 0; Cycle < 10; ++Cycle) {
    for (unsigned I = 0; I < 4; ++I) {
      std::string Path =
          "/c" + std::to_string(Cycle) + "_" + std::to_string(I);
      EXPECT_EQ(FsError::Ok, eagerMkdir(Srv, "v", Path, ++Xid).Err);
    }
    Srv.crashAndRecover("v");
    EXPECT_LE(Srv.drcEvictQueueSize(), size_t(Cfg.DuplicateRequestCacheSize))
        << "cycle " << Cycle;
    EXPECT_EQ(Srv.drcSize(), Srv.drcEvictQueueSize()) << "cycle " << Cycle;
  }
}

//===----------------------------------------------------------------------===//
// Sharded metadata service: kill one shard under load
//===----------------------------------------------------------------------===//

TEST(Fault, ShardedKillOneShardRecoversExactlyOnce) {
  // E29 for the sharded service: a burst of creates into one directory
  // drives splits across two shards while every first reply is lost and
  // shard 0 crashes mid-burst. Exactly-once must hold ledger-style: every
  // create succeeds (no Exists from a double-apply, no NoEnt from a lost
  // one), the namespace holds each entry exactly once, and both shard
  // volumes pass fsck.
  Scheduler S;
  ShardedOptions O;
  O.NumShards = 2;
  O.SplitThreshold = 3;
  O.Client.Retry.Timeout = milliseconds(10);
  ShardedFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<ShardedClient *>(Client.get());

  ASSERT_EQ(FsError::Ok, runSync(S, *Client, makeMkdir("/big")).Err);

  // Lose every reply in the first 2 ms: all twelve creates execute, then
  // ride their 10 ms retransmit timers.
  FaultPolicy P;
  P.Windows = {{S.now(), S.now() + milliseconds(2), 1.0}};
  C->replyLink().setFaultPolicy(P);

  // Crash shard 0 shortly after the burst starts: some creates (and some
  // migrated-entry records) are committed, the rest die with the volume.
  ServerCrash Crash(S, *Fs.admin(), ShardedFs::volumeName(0),
                    S.now() + microseconds(250));

  constexpr unsigned N = 12;
  std::vector<MetaReply> Replies(N);
  unsigned Got = 0;
  for (unsigned I = 0; I < N; ++I)
    Client->submit(makeMkdir("/big/d" + std::to_string(I)),
                   [&Replies, &Got, I](MetaReply R) {
                     Replies[I] = std::move(R);
                     ++Got;
                   });
  S.run();

  ASSERT_EQ(N, Got);
  ASSERT_TRUE(Crash.fired());
  for (unsigned I = 0; I < N; ++I) {
    EXPECT_EQ(FsError::Ok, Replies[I].Err) << "/big/d" << I;
    EXPECT_NE(FsError::Exists, Replies[I].Err) << "double-applied /big/d" << I;
  }

  // The burst overflowed the 3-entry threshold, so the directory split,
  // and retransmits routed with the pre-split bitmap were redirected.
  EXPECT_GT(Fs.splitCount(), 0u);
  EXPECT_GT(C->staleMapRetries(), 0u);

  // Ledger: every entry exists exactly once, and readdir through the
  // fan-out coordinator sees each of them exactly once.
  for (unsigned I = 0; I < N; ++I) {
    MetaReply St = runSync(S, *Client, makeStat("/big/d" + std::to_string(I)));
    ASSERT_TRUE(St.ok()) << "/big/d" << I;
    EXPECT_EQ(FileType::Directory, St.A.Type);
  }
  MetaReply Dir = runSync(S, *Client, makeReaddir("/big"));
  ASSERT_TRUE(Dir.ok());
  std::vector<std::string> Expect = {".", ".."};
  for (unsigned I = 0; I < N; ++I)
    Expect.push_back("d" + std::to_string(I));
  std::sort(Expect.begin(), Expect.end());
  std::vector<std::string> Seen;
  for (const DirEntry &E : Dir.Entries)
    Seen.push_back(E.Name);
  std::sort(Seen.begin(), Seen.end());
  EXPECT_EQ(Expect, Seen);

  // Both shard stores are consistent, and neither shard's eviction queue
  // drifted out of sync with its cache across crash pruning and entry
  // migration.
  for (unsigned I = 0; I < Fs.numShards(); ++I) {
    LocalFileSystem *V = Fs.shard(I).volume(ShardedFs::volumeName(I));
    ASSERT_NE(nullptr, V) << "shard " << I;
    EXPECT_TRUE(V->fsck().clean()) << "shard " << I;
    EXPECT_EQ(Fs.shard(I).drcSize(), Fs.shard(I).drcEvictQueueSize())
        << "shard " << I;
    EXPECT_LE(Fs.shard(I).drcEvictQueueSize(),
              size_t(Fs.options().ShardDefaults.DuplicateRequestCacheSize))
        << "shard " << I;
  }
}

//===----------------------------------------------------------------------===//
// Schedule invariance of a faulted scenario
//===----------------------------------------------------------------------===//

TEST(Fault, FaultedBenchmarkIsInvariantUnderPermutedSchedules) {
  // A full Master run with a loss window, an outage partition and a
  // mid-run MDS crash. Fault rolls are pure functions of send time, so
  // permuting same-timestamp tie order must not change which messages
  // are lost — the canonical result stays bit-identical.
  ScheduleScenario Sc;
  Sc.Name = "nfs-makefiles-faulted";
  Sc.Run = [](Scheduler &S) {
    NfsOptions O;
    O.Client.Net.Faults.Seed = 7;
    O.Client.Net.Faults.Windows = {
        {seconds(0.3), seconds(0.8), /*DropProbability=*/0.6},
        {seconds(1.0), seconds(1.05), /*DropProbability=*/1.0},
    };
    O.Client.Retry.Timeout = milliseconds(10);
    O.Client.Retry.MaxRetransmits = 30;
    O.Server.DuplicateRequestCacheSize = 1 << 16;
    auto Fs = std::make_unique<NfsFs>(S, O);
    Fs->server().enableJournal();
    Cluster C(S, 2, 4);
    C.mountEverywhere(*Fs);
    ServerCrash Crash(S, *Fs->admin(), NfsFs::VolumeName, seconds(1.0));
    BenchParams P;
    P.Operations = {"MakeFiles"};
    P.ProblemSize = 150;
    P.TimeLimit = seconds(1.5);
    MpiEnvironment Env = MpiEnvironment::uniform(2, 3);
    Master M(C, Env, "nfs", P);
    return canonicalResultText(M.runCombination(2, 2));
  };
  ScheduleVerifyResult R = verifySchedules(Sc);
  EXPECT_TRUE(R.IdentityIdentical) << R.Report;
  EXPECT_TRUE(R.Deterministic) << R.Report;
  EXPECT_EQ(8u, R.SchedulesRun);
}

} // namespace
