//===- tests/FsTest.cpp - Unit tests for the local file system ------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the POSIX semantics of \S 2.1-2.3 and \S 2.6 of the thesis:
/// name uniqueness, link counts, deferred unlink, atomic rename, permission
/// walks, symlink resolution, sparse files and directory index behaviour.
///
//===----------------------------------------------------------------------===//

#include "fs/CostModel.h"
#include "fs/LocalFileSystem.h"
#include "support/Random.h"
#include <gtest/gtest.h>

using namespace dmb;

namespace {

OpCtx userCtx(SimTime Now = 0) {
  OpCtx Ctx;
  Ctx.Creds.Uid = 1000;
  Ctx.Creds.Gid = 1000;
  Ctx.Now = Now;
  return Ctx;
}

OpCtx rootCtx(SimTime Now = 0) {
  OpCtx Ctx;
  Ctx.Creds.Uid = 0;
  Ctx.Creds.Gid = 0;
  Ctx.Now = Now;
  return Ctx;
}

/// Creates an empty file the way the MakeFiles plugin does:
/// open(O_CREAT)/close (thesis Table 3.5).
FsError touch(LocalFileSystem &Fs, OpCtx &Ctx, const std::string &Path) {
  Result<FileHandle> Fh =
      Fs.open(Ctx, Path, OpenWrite | OpenCreate, 0644);
  if (!Fh.ok())
    return Fh.error();
  return Fs.close(Ctx, *Fh);
}

class FsTest : public ::testing::Test {
protected:
  LocalFileSystem Fs;
  OpCtx Ctx = userCtx();
};

//===----------------------------------------------------------------------===//
// Directories
//===----------------------------------------------------------------------===//

TEST_F(FsTest, MkdirCreatesDirectory) {
  EXPECT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  Result<Attr> A = Fs.stat(Ctx, "/a");
  ASSERT_TRUE(A.ok());
  EXPECT_EQ(FileType::Directory, A->Type);
  EXPECT_EQ(2u, A->Nlink);
  EXPECT_EQ(1000u, A->Uid);
}

TEST_F(FsTest, MkdirExistingFails) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  EXPECT_EQ(FsError::Exists, Fs.mkdir(Ctx, "/a", 0755));
  EXPECT_EQ(FsError::Exists, Fs.mkdir(Ctx, "/", 0755));
}

TEST_F(FsTest, MkdirMissingParentFails) {
  EXPECT_EQ(FsError::NoEnt, Fs.mkdir(Ctx, "/a/b", 0755));
}

TEST_F(FsTest, NestedDirectoriesLinkCounts) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a/b", 0755));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a/c", 0755));
  // A directory's nlink is 2 plus one per subdirectory ("..").
  EXPECT_EQ(4u, Fs.stat(Ctx, "/a")->Nlink);
  ASSERT_EQ(FsError::Ok, Fs.rmdir(Ctx, "/a/c"));
  EXPECT_EQ(3u, Fs.stat(Ctx, "/a")->Nlink);
}

TEST_F(FsTest, RmdirNonEmptyFails) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/a/f"));
  EXPECT_EQ(FsError::NotEmpty, Fs.rmdir(Ctx, "/a"));
  ASSERT_EQ(FsError::Ok, Fs.unlink(Ctx, "/a/f"));
  EXPECT_EQ(FsError::Ok, Fs.rmdir(Ctx, "/a"));
  EXPECT_EQ(FsError::NoEnt, Fs.stat(Ctx, "/a").error());
}

TEST_F(FsTest, RmdirOnFileFails) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  EXPECT_EQ(FsError::NotDir, Fs.rmdir(Ctx, "/f"));
}

TEST_F(FsTest, DotAndDotDotResolve) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a/b", 0755));
  EXPECT_EQ(Fs.stat(Ctx, "/a")->Ino, Fs.stat(Ctx, "/a/b/..")->Ino);
  EXPECT_EQ(Fs.stat(Ctx, "/a")->Ino, Fs.stat(Ctx, "/a/.")->Ino);
  // Root's dot-dot points to root itself.
  EXPECT_EQ(Fs.stat(Ctx, "/")->Ino, Fs.stat(Ctx, "/..")->Ino);
}

TEST_F(FsTest, ReaddirContainsDotEntries) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/a/x"));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/a/y"));
  Result<std::vector<DirEntry>> Entries = Fs.readdir(Ctx, "/a");
  ASSERT_TRUE(Entries.ok());
  ASSERT_EQ(4u, Entries->size());
  EXPECT_EQ(".", (*Entries)[0].Name);
  EXPECT_EQ("..", (*Entries)[1].Name);
}

TEST_F(FsTest, TrailingAndRepeatedSlashesTolerated) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  EXPECT_TRUE(Fs.stat(Ctx, "/a/").ok());
  EXPECT_TRUE(Fs.stat(Ctx, "//a").ok());
}

TEST_F(FsTest, RelativePathRejected) {
  EXPECT_EQ(FsError::Invalid, Fs.mkdir(Ctx, "a", 0755));
  EXPECT_EQ(FsError::Invalid, Fs.stat(Ctx, "").error());
}

TEST_F(FsTest, NameTooLongRejected) {
  std::string Long(300, 'x');
  EXPECT_EQ(FsError::NameTooLong, Fs.mkdir(Ctx, "/" + Long, 0755));
}

//===----------------------------------------------------------------------===//
// Files, open/close, deferred unlink
//===----------------------------------------------------------------------===//

TEST_F(FsTest, CreateAndStatFile) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  Result<Attr> A = Fs.stat(Ctx, "/f");
  ASSERT_TRUE(A.ok());
  EXPECT_EQ(FileType::Regular, A->Type);
  EXPECT_EQ(1u, A->Nlink);
  EXPECT_EQ(0u, A->Size);
}

TEST_F(FsTest, OpenExclFailsOnExisting) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  Result<FileHandle> Fh =
      Fs.open(Ctx, "/f", OpenWrite | OpenCreate | OpenExcl);
  EXPECT_EQ(FsError::Exists, Fh.error());
}

TEST_F(FsTest, OpenMissingWithoutCreateFails) {
  EXPECT_EQ(FsError::NoEnt, Fs.open(Ctx, "/nope", OpenRead).error());
}

TEST_F(FsTest, UnlinkedOpenFileLingersUntilClose) {
  Result<FileHandle> Fh = Fs.open(Ctx, "/tmpfile", OpenWrite | OpenCreate);
  ASSERT_TRUE(Fh.ok());
  ASSERT_EQ(FsError::Ok, Fs.unlink(Ctx, "/tmpfile"));
  // The directory entry is gone, but the inode lives (UNIX temp file
  // idiom, \S 2.3.1): writes still succeed.
  EXPECT_EQ(FsError::NoEnt, Fs.stat(Ctx, "/tmpfile").error());
  EXPECT_TRUE(Fs.write(Ctx, *Fh, 100).ok());
  uint64_t InodesBefore = Fs.numInodes();
  ASSERT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
  EXPECT_EQ(InodesBefore - 1, Fs.numInodes());
}

TEST_F(FsTest, UnlinkOnDirectoryFails) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/d", 0755));
  EXPECT_EQ(FsError::IsDir, Fs.unlink(Ctx, "/d"));
}

TEST_F(FsTest, RemoveDispatchesByType) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/d", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  EXPECT_EQ(FsError::Ok, Fs.remove(Ctx, "/d"));
  EXPECT_EQ(FsError::Ok, Fs.remove(Ctx, "/f"));
  EXPECT_EQ(FsError::NoEnt, Fs.remove(Ctx, "/gone"));
}

TEST_F(FsTest, WriteExtendsAndAllocatesBlocks) {
  Result<FileHandle> Fh = Fs.open(Ctx, "/f", OpenWrite | OpenCreate);
  ASSERT_TRUE(Fh.ok());
  ASSERT_TRUE(Fs.write(Ctx, *Fh, 10000).ok());
  Result<Attr> A = Fs.fstat(Ctx, *Fh);
  EXPECT_EQ(10000u, A->Size);
  EXPECT_EQ(3u, A->Blocks); // ceil(10000/4096)
  EXPECT_EQ(3u, Fs.allocatedBlocks());
  ASSERT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
  ASSERT_EQ(FsError::Ok, Fs.unlink(Ctx, "/f"));
  EXPECT_EQ(0u, Fs.allocatedBlocks());
}

TEST_F(FsTest, SparseFileViaSeek) {
  Result<FileHandle> Fh = Fs.open(Ctx, "/f", OpenWrite | OpenCreate);
  ASSERT_TRUE(Fh.ok());
  ASSERT_TRUE(Fs.seek(Ctx, *Fh, 1000000).ok());
  ASSERT_TRUE(Fs.write(Ctx, *Fh, 1).ok());
  EXPECT_EQ(1000001u, Fs.fstat(Ctx, *Fh)->Size);
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
}

TEST_F(FsTest, AppendRepositionsBeforeWrite) {
  Result<FileHandle> A = Fs.open(Ctx, "/f", OpenWrite | OpenCreate);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(Fs.write(Ctx, *A, 100).ok());
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *A));
  Result<FileHandle> B = Fs.open(Ctx, "/f", OpenWrite | OpenAppend);
  ASSERT_TRUE(B.ok());
  ASSERT_TRUE(Fs.write(Ctx, *B, 50).ok());
  EXPECT_EQ(150u, Fs.fstat(Ctx, *B)->Size);
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *B));
}

TEST_F(FsTest, ReadStopsAtEof) {
  Result<FileHandle> Fh =
      Fs.open(Ctx, "/f", OpenRead | OpenWrite | OpenCreate);
  ASSERT_TRUE(Fh.ok());
  ASSERT_TRUE(Fs.write(Ctx, *Fh, 100).ok());
  ASSERT_TRUE(Fs.seek(Ctx, *Fh, 0).ok());
  EXPECT_EQ(100u, *Fs.read(Ctx, *Fh, 1000));
  EXPECT_EQ(0u, *Fs.read(Ctx, *Fh, 1000));
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
}

TEST_F(FsTest, TruncateFreesBlocks) {
  Result<FileHandle> Fh = Fs.open(Ctx, "/f", OpenWrite | OpenCreate);
  ASSERT_TRUE(Fh.ok());
  ASSERT_TRUE(Fs.write(Ctx, *Fh, 100000).ok());
  uint64_t Before = Fs.allocatedBlocks();
  ASSERT_EQ(FsError::Ok, Fs.ftruncate(Ctx, *Fh, 0));
  EXPECT_LT(Fs.allocatedBlocks(), Before);
  EXPECT_EQ(0u, Fs.fstat(Ctx, *Fh)->Size);
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
}

TEST_F(FsTest, OpenTruncClearsFile) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  Result<FileHandle> A = Fs.open(Ctx, "/f", OpenWrite);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(Fs.write(Ctx, *A, 5000).ok());
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *A));
  Result<FileHandle> B = Fs.open(Ctx, "/f", OpenWrite | OpenTrunc);
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(0u, Fs.fstat(Ctx, *B)->Size);
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *B));
}

TEST_F(FsTest, WriteOnReadOnlyHandleFails) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  Result<FileHandle> Fh = Fs.open(Ctx, "/f", OpenRead);
  ASSERT_TRUE(Fh.ok());
  EXPECT_EQ(FsError::BadFd, Fs.write(Ctx, *Fh, 10).error());
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
}

TEST_F(FsTest, BadHandleRejected) {
  EXPECT_EQ(FsError::BadFd, Fs.close(Ctx, 999999));
  EXPECT_EQ(FsError::BadFd, Fs.write(Ctx, 999999, 1).error());
  EXPECT_EQ(FsError::BadFd, Fs.fstat(Ctx, 999999).error());
}

//===----------------------------------------------------------------------===//
// Links
//===----------------------------------------------------------------------===//

TEST_F(FsTest, HardlinkSharesInode) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  ASSERT_EQ(FsError::Ok, Fs.link(Ctx, "/f", "/g"));
  EXPECT_EQ(Fs.stat(Ctx, "/f")->Ino, Fs.stat(Ctx, "/g")->Ino);
  EXPECT_EQ(2u, Fs.stat(Ctx, "/f")->Nlink);
  ASSERT_EQ(FsError::Ok, Fs.unlink(Ctx, "/f"));
  // The file remains reachable through the second link.
  EXPECT_EQ(1u, Fs.stat(Ctx, "/g")->Nlink);
  ASSERT_EQ(FsError::Ok, Fs.unlink(Ctx, "/g"));
  EXPECT_EQ(FsError::NoEnt, Fs.stat(Ctx, "/g").error());
}

TEST_F(FsTest, HardlinkToDirectoryForbidden) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/d", 0755));
  EXPECT_EQ(FsError::Perm, Fs.link(Ctx, "/d", "/d2"));
}

TEST_F(FsTest, HardlinkToExistingNameFails) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/g"));
  EXPECT_EQ(FsError::Exists, Fs.link(Ctx, "/f", "/g"));
}

TEST_F(FsTest, SymlinkResolvesToTarget) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/real", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/real/f"));
  ASSERT_EQ(FsError::Ok, Fs.symlink(Ctx, "/real", "/lnk"));
  EXPECT_EQ(Fs.stat(Ctx, "/real/f")->Ino, Fs.stat(Ctx, "/lnk/f")->Ino);
  // stat follows; lstat does not.
  EXPECT_EQ(FileType::Directory, Fs.stat(Ctx, "/lnk")->Type);
  EXPECT_EQ(FileType::Symlink, Fs.lstat(Ctx, "/lnk")->Type);
  EXPECT_EQ("/real", *Fs.readlink(Ctx, "/lnk"));
}

TEST_F(FsTest, RelativeSymlink) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/a/target"));
  ASSERT_EQ(FsError::Ok, Fs.symlink(Ctx, "target", "/a/lnk"));
  EXPECT_EQ(Fs.stat(Ctx, "/a/target")->Ino, Fs.stat(Ctx, "/a/lnk")->Ino);
}

TEST_F(FsTest, DanglingSymlinkStatFails) {
  ASSERT_EQ(FsError::Ok, Fs.symlink(Ctx, "/nowhere", "/lnk"));
  EXPECT_EQ(FsError::NoEnt, Fs.stat(Ctx, "/lnk").error());
  EXPECT_TRUE(Fs.lstat(Ctx, "/lnk").ok());
}

TEST_F(FsTest, SymlinkLoopDetected) {
  ASSERT_EQ(FsError::Ok, Fs.symlink(Ctx, "/b", "/a"));
  ASSERT_EQ(FsError::Ok, Fs.symlink(Ctx, "/a", "/b"));
  EXPECT_EQ(FsError::Loop, Fs.stat(Ctx, "/a").error());
}

TEST_F(FsTest, ReadlinkOnNonSymlinkFails) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  EXPECT_EQ(FsError::Invalid, Fs.readlink(Ctx, "/f").error());
}

//===----------------------------------------------------------------------===//
// Rename
//===----------------------------------------------------------------------===//

TEST_F(FsTest, RenameMovesFile) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/d", 0755));
  InodeNum Ino = Fs.stat(Ctx, "/f")->Ino;
  ASSERT_EQ(FsError::Ok, Fs.rename(Ctx, "/f", "/d/g"));
  EXPECT_EQ(FsError::NoEnt, Fs.stat(Ctx, "/f").error());
  EXPECT_EQ(Ino, Fs.stat(Ctx, "/d/g")->Ino);
}

TEST_F(FsTest, RenameReplacesExistingFileAtomically) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/a"));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/b"));
  InodeNum AIno = Fs.stat(Ctx, "/a")->Ino;
  uint64_t Before = Fs.numInodes();
  ASSERT_EQ(FsError::Ok, Fs.rename(Ctx, "/a", "/b"));
  EXPECT_EQ(AIno, Fs.stat(Ctx, "/b")->Ino);
  EXPECT_EQ(Before - 1, Fs.numInodes()); // The victim inode was reaped.
}

TEST_F(FsTest, RenameDirIntoOwnSubtreeFails) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a/b", 0755));
  EXPECT_EQ(FsError::Invalid, Fs.rename(Ctx, "/a", "/a/b/c"));
}

TEST_F(FsTest, RenameDirOntoNonEmptyDirFails) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/b", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/b/f"));
  EXPECT_EQ(FsError::NotEmpty, Fs.rename(Ctx, "/a", "/b"));
}

TEST_F(FsTest, RenameDirOntoEmptyDirSucceeds) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/a/f"));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/b", 0755));
  ASSERT_EQ(FsError::Ok, Fs.rename(Ctx, "/a", "/b"));
  EXPECT_TRUE(Fs.stat(Ctx, "/b/f").ok());
  EXPECT_EQ(FsError::NoEnt, Fs.stat(Ctx, "/a").error());
}

TEST_F(FsTest, RenameFileOntoDirFails) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/d", 0755));
  EXPECT_EQ(FsError::IsDir, Fs.rename(Ctx, "/f", "/d"));
  EXPECT_EQ(FsError::NotDir, Fs.rename(Ctx, "/d", "/f"));
}

TEST_F(FsTest, RenameOntoSelfIsNoOp) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  EXPECT_EQ(FsError::Ok, Fs.rename(Ctx, "/f", "/f"));
  EXPECT_TRUE(Fs.stat(Ctx, "/f").ok());
}

TEST_F(FsTest, RenameDirAcrossParentsFixesDotDotAndNlink) {
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a", 0755));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/b", 0755));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/a/sub", 0755));
  ASSERT_EQ(FsError::Ok, Fs.rename(Ctx, "/a/sub", "/b/sub"));
  EXPECT_EQ(2u, Fs.stat(Ctx, "/a")->Nlink);
  EXPECT_EQ(3u, Fs.stat(Ctx, "/b")->Nlink);
  EXPECT_EQ(Fs.stat(Ctx, "/b")->Ino, Fs.stat(Ctx, "/b/sub/..")->Ino);
}

//===----------------------------------------------------------------------===//
// Permissions
//===----------------------------------------------------------------------===//

TEST_F(FsTest, PathWalkRequiresExecuteOnEveryDirectory) {
  OpCtx Root = rootCtx();
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Root, "/locked", 0700));
  ASSERT_EQ(FsError::Ok, touch(Fs, Root, "/locked/f"));
  // A non-root user cannot pass through a 0700 directory owned by root
  // (\S 2.3.1: x-permission needed on the whole path).
  EXPECT_EQ(FsError::Access, Fs.stat(Ctx, "/locked/f").error());
  EXPECT_TRUE(Fs.stat(Root, "/locked/f").ok());
}

TEST_F(FsTest, CreateRequiresWriteOnParent) {
  OpCtx Root = rootCtx();
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Root, "/ro", 0755));
  EXPECT_EQ(FsError::Access, touch(Fs, Ctx, "/ro/f"));
  EXPECT_EQ(FsError::Access, Fs.mkdir(Ctx, "/ro/d", 0755));
  EXPECT_EQ(FsError::Access, Fs.symlink(Ctx, "/x", "/ro/l"));
}

TEST_F(FsTest, UnlinkRequiresWriteOnParent) {
  OpCtx Root = rootCtx();
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Root, "/ro", 0755));
  ASSERT_EQ(FsError::Ok, touch(Fs, Root, "/ro/f"));
  EXPECT_EQ(FsError::Access, Fs.unlink(Ctx, "/ro/f"));
}

TEST_F(FsTest, OpenChecksModeBits) {
  OpCtx Root = rootCtx();
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Root, "/pub", 0777));
  Result<FileHandle> Fh =
      Fs.open(Root, "/pub/secret", OpenWrite | OpenCreate, 0600);
  ASSERT_TRUE(Fh.ok());
  EXPECT_EQ(FsError::Ok, Fs.close(Root, *Fh));
  EXPECT_EQ(FsError::Access, Fs.open(Ctx, "/pub/secret", OpenRead).error());
}

TEST_F(FsTest, ChmodOnlyByOwnerOrRoot) {
  OpCtx Root = rootCtx();
  ASSERT_EQ(FsError::Ok, touch(Fs, Root, "/f"));
  EXPECT_EQ(FsError::Perm, Fs.chmod(Ctx, "/f", 0777));
  EXPECT_EQ(FsError::Ok, Fs.chmod(Root, "/f", 0777));
  EXPECT_EQ(0777u, Fs.stat(Ctx, "/f")->Mode);
}

TEST_F(FsTest, ChownOnlyByRoot) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  EXPECT_EQ(FsError::Perm, Fs.chown(Ctx, "/f", 42, 42));
  OpCtx Root = rootCtx();
  EXPECT_EQ(FsError::Ok, Fs.chown(Root, "/f", 42, 42));
  EXPECT_EQ(42u, Fs.stat(Ctx, "/f")->Uid);
}

TEST_F(FsTest, GroupPermissionsApply) {
  OpCtx Root = rootCtx();
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Root, "/g", 0770));
  ASSERT_EQ(FsError::Ok, Fs.chown(Root, "/g", 0, 1000));
  // Ctx has gid 1000 => group class grants rwx.
  EXPECT_EQ(FsError::Ok, touch(Fs, Ctx, "/g/f"));
  OpCtx Other = userCtx();
  Other.Creds.Uid = 2000;
  Other.Creds.Gid = 2000;
  EXPECT_EQ(FsError::Access, Fs.stat(Other, "/g/f").error());
}

//===----------------------------------------------------------------------===//
// Timestamps
//===----------------------------------------------------------------------===//

TEST_F(FsTest, TimestampsMaintained) {
  OpCtx T1 = userCtx(seconds(1.0));
  ASSERT_EQ(FsError::Ok, touch(Fs, T1, "/f"));
  Result<Attr> A = Fs.stat(T1, "/f");
  EXPECT_EQ(seconds(1.0), A->Mtime);
  EXPECT_EQ(seconds(1.0), A->Ctime);

  OpCtx T2 = userCtx(seconds(5.0));
  Result<FileHandle> Fh = Fs.open(T2, "/f", OpenWrite);
  ASSERT_TRUE(Fh.ok());
  ASSERT_TRUE(Fs.write(T2, *Fh, 10).ok());
  EXPECT_EQ(FsError::Ok, Fs.close(T2, *Fh));
  EXPECT_EQ(seconds(5.0), Fs.stat(T2, "/f")->Mtime);

  OpCtx T3 = userCtx(seconds(9.0));
  EXPECT_EQ(FsError::Ok, Fs.utimes(T3, "/f", seconds(2.0), seconds(3.0)));
  Result<Attr> B = Fs.stat(T3, "/f");
  EXPECT_EQ(seconds(2.0), B->Atime);
  EXPECT_EQ(seconds(3.0), B->Mtime);
  EXPECT_EQ(seconds(9.0), B->Ctime);
}

TEST_F(FsTest, MkdirUpdatesParentMtime) {
  OpCtx T1 = userCtx(seconds(1.0));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(T1, "/d", 0755));
  OpCtx T2 = userCtx(seconds(7.0));
  ASSERT_EQ(FsError::Ok, Fs.mkdir(T2, "/d/sub", 0755));
  EXPECT_EQ(seconds(7.0), Fs.stat(T2, "/d")->Mtime);
}

//===----------------------------------------------------------------------===//
// Extended attributes
//===----------------------------------------------------------------------===//

TEST_F(FsTest, XattrRoundTrip) {
  ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f"));
  ASSERT_EQ(FsError::Ok, Fs.setxattr(Ctx, "/f", "user.color", "blue"));
  ASSERT_EQ(FsError::Ok, Fs.setxattr(Ctx, "/f", "user.size", "XL"));
  EXPECT_EQ("blue", *Fs.getxattr(Ctx, "/f", "user.color"));
  Result<std::vector<std::string>> Keys = Fs.listxattr(Ctx, "/f");
  ASSERT_TRUE(Keys.ok());
  EXPECT_EQ(2u, Keys->size());
  ASSERT_EQ(FsError::Ok, Fs.removexattr(Ctx, "/f", "user.color"));
  EXPECT_EQ(FsError::NoAttr, Fs.getxattr(Ctx, "/f", "user.color").error());
  EXPECT_EQ(FsError::NoAttr, Fs.removexattr(Ctx, "/f", "user.color"));
}

//===----------------------------------------------------------------------===//
// Capacity limits
//===----------------------------------------------------------------------===//

TEST(FsLimits, InodeLimitYieldsNoSpace) {
  FsConfig C;
  C.MaxInodes = 3; // root + 2 more
  LocalFileSystem Fs(C);
  OpCtx Ctx = userCtx();
  EXPECT_EQ(FsError::Ok, touch(Fs, Ctx, "/a"));
  EXPECT_EQ(FsError::Ok, touch(Fs, Ctx, "/b"));
  EXPECT_EQ(FsError::NoSpace, touch(Fs, Ctx, "/c"));
  // Deleting frees the inode for reuse (\S 2.4.2 flexible inode counts).
  EXPECT_EQ(FsError::Ok, Fs.unlink(Ctx, "/a"));
  EXPECT_EQ(FsError::Ok, touch(Fs, Ctx, "/c"));
}

TEST(FsLimits, BlockLimitYieldsNoSpace) {
  FsConfig C;
  C.MaxBlocks = 2;
  LocalFileSystem Fs(C);
  OpCtx Ctx = userCtx();
  Result<FileHandle> Fh = Fs.open(Ctx, "/f", OpenWrite | OpenCreate);
  ASSERT_TRUE(Fh.ok());
  EXPECT_TRUE(Fs.write(Ctx, *Fh, 8192).ok());
  EXPECT_EQ(FsError::NoSpace, Fs.write(Ctx, *Fh, 8192).error());
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
}

//===----------------------------------------------------------------------===//
// Inline data (WAFL 64-byte files, \S 4.3.4)
//===----------------------------------------------------------------------===//

TEST(FsInline, SmallFilesAllocateNoBlocks) {
  FsConfig C;
  C.InlineDataMax = 64;
  LocalFileSystem Fs(C);
  OpCtx Ctx = userCtx();
  Result<FileHandle> Fh = Fs.open(Ctx, "/f", OpenWrite | OpenCreate);
  ASSERT_TRUE(Fh.ok());
  ASSERT_TRUE(Fs.write(Ctx, *Fh, 64).ok());
  EXPECT_EQ(0u, Fs.fstat(Ctx, *Fh)->Blocks);
  // The 65th byte spills out of the inode into a real block.
  ASSERT_TRUE(Fs.write(Ctx, *Fh, 1).ok());
  EXPECT_EQ(1u, Fs.fstat(Ctx, *Fh)->Blocks);
  EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
}

//===----------------------------------------------------------------------===//
// Cost accounting and directory indexes
//===----------------------------------------------------------------------===//

TEST(FsCost, LinearDirectoryScansGrowWithSize) {
  FsConfig C;
  C.DirIndex = DirIndexKind::Linear;
  LocalFileSystem Fs(C);
  OpCtx Ctx = userCtx();
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f" + std::to_string(I)));

  OpCtx Early = userCtx();
  ASSERT_TRUE(Fs.stat(Early, "/f0").ok());
  OpCtx Late = userCtx();
  ASSERT_TRUE(Fs.stat(Late, "/f99").ok());
  EXPECT_GT(Late.Cost.DirEntriesScanned, Early.Cost.DirEntriesScanned);
}

TEST(FsCost, HashedDirectoryScansStayFlat) {
  FsConfig C;
  C.DirIndex = DirIndexKind::Hashed;
  LocalFileSystem Fs(C);
  OpCtx Ctx = userCtx();
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/f" + std::to_string(I)));
  OpCtx Probe = userCtx();
  ASSERT_TRUE(Fs.stat(Probe, "/f99").ok());
  EXPECT_LE(Probe.Cost.DirEntriesScanned, 2u);
}

TEST(FsCost, CostModelMonotoneInWork) {
  CostModel M;
  OpCost Small, Large;
  Small.DirEntriesScanned = 1;
  Large.DirEntriesScanned = 100000;
  EXPECT_GT(M.serviceTime(Large), M.serviceTime(Small));
  OpCost Payload;
  Payload.BytesWritten = 100000000;
  EXPECT_GT(M.serviceTime(Payload), M.serviceTime(Small));
}

TEST(FsCost, DirectorySizeIntrospection) {
  LocalFileSystem Fs;
  OpCtx Ctx = userCtx();
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/d", 0755));
  for (int I = 0; I < 10; ++I)
    ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/d/f" + std::to_string(I)));
  EXPECT_EQ(10u, Fs.directorySize("/d"));
  EXPECT_EQ(0u, Fs.directorySize("/missing"));
}

//===----------------------------------------------------------------------===//
// Directory index property sweep (all kinds behave identically modulo cost)
//===----------------------------------------------------------------------===//

class DirIndexParamTest : public ::testing::TestWithParam<DirIndexKind> {};

TEST_P(DirIndexParamTest, InsertLookupEraseList) {
  auto Index = makeDirectoryIndex(GetParam());
  OpCost Cost;
  for (int I = 0; I < 500; ++I) {
    // Built with += — GCC 12's -Wrestrict misfires on the "f" +
    // to_string temporary chain once it inlines the insert.
    std::string Name = "f";
    Name += std::to_string(I);
    Index->insert(DirEntry{Name, static_cast<InodeNum>(I + 10),
                           FileType::Regular},
                  Cost);
  }
  EXPECT_EQ(500u, Index->size());
  for (int I = 0; I < 500; I += 7) {
    std::string Name = "f";
    Name += std::to_string(I);
    const DirEntry *E = Index->lookup(Name, Cost);
    ASSERT_NE(nullptr, E);
    EXPECT_EQ(static_cast<InodeNum>(I + 10), E->Ino);
  }
  EXPECT_EQ(nullptr, Index->lookup("missing", Cost));
  EXPECT_TRUE(Index->erase("f0", Cost));
  EXPECT_FALSE(Index->erase("f0", Cost));
  EXPECT_EQ(499u, Index->size());
  std::vector<DirEntry> All;
  Index->list(All, Cost);
  EXPECT_EQ(499u, All.size());
}

TEST_P(DirIndexParamTest, FileSystemBehaviourIdenticalAcrossIndexes) {
  FsConfig C;
  C.DirIndex = GetParam();
  LocalFileSystem Fs(C);
  OpCtx Ctx = userCtx();
  ASSERT_EQ(FsError::Ok, Fs.mkdir(Ctx, "/d", 0755));
  for (int I = 0; I < 50; ++I)
    ASSERT_EQ(FsError::Ok, touch(Fs, Ctx, "/d/f" + std::to_string(I)));
  EXPECT_EQ(FsError::Exists, Fs.mkdir(Ctx, "/d", 0755));
  EXPECT_EQ(50u, Fs.directorySize("/d"));
  Result<std::vector<DirEntry>> Entries = Fs.readdir(Ctx, "/d");
  ASSERT_TRUE(Entries.ok());
  EXPECT_EQ(52u, Entries->size()); // 50 files + "." + "..".
  for (int I = 0; I < 50; ++I)
    ASSERT_EQ(FsError::Ok, Fs.unlink(Ctx, "/d/f" + std::to_string(I)));
  EXPECT_EQ(FsError::Ok, Fs.rmdir(Ctx, "/d"));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DirIndexParamTest,
                         ::testing::Values(DirIndexKind::Linear,
                                           DirIndexKind::Hashed,
                                           DirIndexKind::BTree),
                         [](const auto &Info) {
                           return dirIndexKindName(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Randomized invariant property test
//===----------------------------------------------------------------------===//

TEST(FsProperty, RandomOperationsPreserveInvariants) {
  LocalFileSystem Fs;
  OpCtx Ctx = userCtx();
  Rng R(20090119); // Thesis defence date as seed.
  std::vector<std::string> Dirs = {"/"};
  std::vector<std::string> Files;
  uint64_t LiveFiles = 0, LiveDirs = 1;

  for (int Step = 0; Step < 5000; ++Step) {
    switch (R.below(5)) {
    case 0: { // mkdir
      std::string Parent = Dirs[R.below(Dirs.size())];
      std::string Path = (Parent == "/" ? "" : Parent) + "/d" +
                         std::to_string(Step);
      if (succeeded(Fs.mkdir(Ctx, Path, 0755))) {
        Dirs.push_back(Path);
        ++LiveDirs;
      }
      break;
    }
    case 1: { // create file
      std::string Parent = Dirs[R.below(Dirs.size())];
      std::string Path = (Parent == "/" ? "" : Parent) + "/f" +
                         std::to_string(Step);
      Result<FileHandle> Fh = Fs.open(Ctx, Path, OpenWrite | OpenCreate);
      if (Fh.ok()) {
        EXPECT_EQ(FsError::Ok, Fs.close(Ctx, *Fh));
        Files.push_back(Path);
        ++LiveFiles;
      }
      break;
    }
    case 2: { // unlink a random file
      if (Files.empty())
        break;
      size_t I = R.below(Files.size());
      if (succeeded(Fs.unlink(Ctx, Files[I]))) {
        Files.erase(Files.begin() + static_cast<ptrdiff_t>(I));
        --LiveFiles;
      }
      break;
    }
    case 3: { // stat something
      if (!Files.empty()) {
        EXPECT_TRUE(Fs.stat(Ctx, Files[R.below(Files.size())]).ok());
      }
      break;
    }
    case 4: { // rename a file into another directory
      if (Files.empty())
        break;
      size_t I = R.below(Files.size());
      std::string Parent = Dirs[R.below(Dirs.size())];
      std::string To = (Parent == "/" ? "" : Parent) + "/r" +
                       std::to_string(Step);
      if (succeeded(Fs.rename(Ctx, Files[I], To)))
        Files[I] = To;
      break;
    }
    }
  }
  // Invariant: inode count equals root + live dirs (-1 for root already
  // counted) + live files.
  EXPECT_EQ(LiveDirs + LiveFiles, Fs.numInodes());
  EXPECT_EQ(0u, Fs.openHandleCount());
  // Every tracked file is reachable.
  for (const std::string &F : Files)
    EXPECT_TRUE(Fs.stat(Ctx, F).ok()) << F;
}

} // namespace
