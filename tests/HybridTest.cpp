//===- tests/HybridTest.cpp - Re-export and volume mobility ----------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the hybrid concepts of thesis \S 2.5: the NFS re-export of a SAN
/// or parallel file system (\S 2.5.4) and transparent volume moves between
/// servers (\S 2.5.1).
///
//===----------------------------------------------------------------------===//

#include "dfs/ReexportFs.h"
#include "dmetabench/DMetabench.h"
#include <gtest/gtest.h>

using namespace dmb;

namespace {

MetaReply runSync(Scheduler &S, ClientFs &C, MetaRequest Req) {
  MetaReply Out;
  C.submit(std::move(Req), [&Out](MetaReply R) { Out = std::move(R); });
  S.run();
  return Out;
}

FsError touch(Scheduler &S, ClientFs &C, const std::string &Path) {
  MetaReply R = runSync(S, C, makeOpen(Path, OpenWrite | OpenCreate));
  if (!R.ok())
    return R.Err;
  return runSync(S, C, makeClose(R.Fh)).Err;
}

//===----------------------------------------------------------------------===//
// NFS re-export (§2.5.4)
//===----------------------------------------------------------------------===//

TEST(Reexport, OperationsReachTheInnerFileSystem) {
  Scheduler S;
  CxfsFs San(S);
  ReexportFs Gateway(S, San);
  std::unique_ptr<ClientFs> C = Gateway.makeClient(0);
  ASSERT_EQ(FsError::Ok, runSync(S, *C, makeMkdir("/export")).Err);
  ASSERT_EQ(FsError::Ok, touch(S, *C, "/export/f"));
  // The SAN file system itself holds the state.
  OpCtx Ctx;
  Ctx.Creds.Uid = 0;
  EXPECT_TRUE(
      San.mds().volume(CxfsFs::VolumeName)->stat(Ctx, "/export/f").ok());
  EXPECT_GT(Gateway.forwardedRequests(), 0u);
}

TEST(Reexport, NfsClientsAndTrustedClientsShareTheNamespace) {
  // The §2.5.4 deployment: trusted machines mount the SAN directly,
  // everyone else goes through the NFS gateway — one namespace.
  Scheduler S;
  CxfsFs San(S);
  ReexportFs Gateway(S, San);
  std::unique_ptr<ClientFs> Trusted = San.makeClient(0);
  std::unique_ptr<ClientFs> Remote = Gateway.makeClient(10);
  ASSERT_EQ(FsError::Ok, touch(S, *Trusted, "/shared"));
  EXPECT_TRUE(runSync(S, *Remote, makeStat("/shared")).ok());
  ASSERT_EQ(FsError::Ok, runSync(S, *Remote, makeUnlink("/shared")).Err);
  EXPECT_EQ(FsError::NoEnt, runSync(S, *Trusted, makeStat("/shared")).Err);
}

TEST(Reexport, GatewayAddsLatencyOverDirectAccess) {
  Scheduler S;
  LustreFs Inner(S);
  ReexportFs Gateway(S, Inner);
  std::unique_ptr<ClientFs> Direct = Inner.makeClient(0);
  std::unique_ptr<ClientFs> ViaGateway = Gateway.makeClient(1);

  SimTime T0 = S.now();
  ASSERT_EQ(FsError::Ok, touch(S, *Direct, "/a"));
  SimDuration DirectTime = S.now() - T0;
  T0 = S.now();
  ASSERT_EQ(FsError::Ok, touch(S, *ViaGateway, "/b"));
  SimDuration GatewayTime = S.now() - T0;
  // Both protocol stacks are paid (\S 2.5.4's trade-off).
  EXPECT_GT(GatewayTime, DirectTime + 2 * 2 * microseconds(100));
}

TEST(Reexport, AttrCacheServesRepeatedStats) {
  Scheduler S;
  CxfsFs San(S);
  ReexportFs Gateway(S, San);
  std::unique_ptr<ClientFs> C = Gateway.makeClient(0);
  ASSERT_EQ(FsError::Ok, touch(S, *C, "/f"));
  uint64_t Before = Gateway.forwardedRequests();
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(runSync(S, *C, makeStat("/f")).ok());
  // The open warmed the cache: no forwarded stats.
  EXPECT_EQ(Before, Gateway.forwardedRequests());
  C->dropCaches();
  ASSERT_TRUE(runSync(S, *C, makeStat("/f")).ok());
  EXPECT_EQ(Before + 1, Gateway.forwardedRequests());
}

TEST(Reexport, WorksAsBenchmarkTarget) {
  Scheduler S;
  Cluster C(S, 2, 4);
  GxFs Inner(S);
  ReexportFs Gateway(S, Inner);
  C.mountEverywhere(Gateway);
  BenchParams P;
  P.Operations = {"MakeFiles"};
  P.TimeLimit = seconds(1.0);
  P.ProblemSize = 10000;
  MpiEnvironment Env = MpiEnvironment::uniform(2, 2);
  Master M(C, Env, Gateway.name(), P);
  ResultSet Res = M.runCombination(2, 1);
  EXPECT_GT(Res.Subtasks[0].totalOps(), 100u);
  for (const ProcessTrace &Proc : Res.Subtasks[0].Processes)
    EXPECT_EQ(0u, Proc.FailedRequests);
}

//===----------------------------------------------------------------------===//
// Volume moves (§2.5.1)
//===----------------------------------------------------------------------===//

TEST(VolumeMove, GxPathOperationsSurviveTheMove) {
  Scheduler S;
  GxOptions Opts;
  Opts.NumFilers = 2;
  GxFs Fs(S, Opts);
  Fs.setupUniformVolumes(2);
  std::unique_ptr<ClientFs> C = Fs.makeClient(0);
  ASSERT_EQ(FsError::Ok, touch(S, *C, "/vol1/f"));
  uint64_t Filer1Before = Fs.filer(1).processedRequests();

  ASSERT_TRUE(Fs.moveVolume("/vol1", 0));
  // Data and namespace are intact; requests now land on filer 0.
  EXPECT_TRUE(runSync(S, *C, makeStat("/vol1/f")).ok());
  ASSERT_EQ(FsError::Ok, touch(S, *C, "/vol1/g"));
  EXPECT_EQ(Filer1Before, Fs.filer(1).processedRequests());
}

TEST(VolumeMove, OpenHandlesBreak) {
  Scheduler S;
  GxOptions Opts;
  Opts.NumFilers = 2;
  GxFs Fs(S, Opts);
  Fs.setupUniformVolumes(2);
  std::unique_ptr<ClientFs> C = Fs.makeClient(0);
  MetaReply O = runSync(S, *C, makeOpen("/vol1/f", OpenWrite | OpenCreate));
  ASSERT_TRUE(O.ok());
  ASSERT_TRUE(Fs.moveVolume("/vol1", 0));
  // The old handle routes to the old filer, where the volume is gone.
  EXPECT_EQ(FsError::Stale, runSync(S, *C, makeWrite(O.Fh, 10)).Err);
}

TEST(VolumeMove, AfsMoveRebalancesServers) {
  Scheduler S;
  AfsFs Cell(S);
  Cell.setupUniform(2, 1);
  std::unique_ptr<ClientFs> C = Cell.makeClient(0);
  ASSERT_EQ(FsError::Ok, touch(S, *C, "/vol0/f"));
  unsigned OldServer = 1; // setupUniform adds servers 1 and 2; vol0 on 1
  uint64_t Before = Cell.server(OldServer).processedRequests();
  ASSERT_TRUE(Cell.moveVolume("/vol0", 2));
  EXPECT_TRUE(runSync(S, *C, makeStat("/vol0/f")).ok());
  EXPECT_EQ(Before, Cell.server(OldServer).processedRequests());
}

TEST(VolumeMove, InvalidTargetsRejected) {
  Scheduler S;
  GxFs Fs(S);
  Fs.setupUniformVolumes(2);
  EXPECT_FALSE(Fs.moveVolume("/vol0", 99));
  EXPECT_FALSE(Fs.moveVolume("/nope", 1));
  EXPECT_TRUE(Fs.moveVolume("/vol0", 0)); // no-op move succeeds
}

} // namespace
