//===- tests/IntegrationTest.cpp - Cross-layer integration tests ----------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end checks that cut across layers: request routing and
/// accounting in the aggregated models, read-after-close visibility,
/// extension plugins under the full framework, and result pipelines from
/// a live run through analysis to TSV.
///
//===----------------------------------------------------------------------===//

#include "analysis/Preprocess.h"
#include "dmetabench/DMetabench.h"
#include "support/Format.h"
#include <gtest/gtest.h>

using namespace dmb;

namespace {

MetaReply runSync(Scheduler &S, ClientFs &C, MetaRequest Req) {
  MetaReply Out;
  C.submit(std::move(Req), [&Out](MetaReply R) { Out = std::move(R); });
  S.run();
  return Out;
}

TEST(Integration, GxForwardingLoadsBothFilers) {
  Scheduler S;
  GxOptions Opts;
  Opts.NumFilers = 2;
  GxFs Fs(S, Opts);
  Fs.setupUniformVolumes(2); // vol0 on filer0, vol1 on filer1
  std::unique_ptr<ClientFs> C = Fs.makeClient(0); // N-blade = filer0

  // Work exclusively on the REMOTE volume: the D-blade work lands on
  // filer1, but filer0 still pays N-blade translation for every request.
  for (int I = 0; I < 20; ++I) {
    MetaReply O = runSync(
        S, *C,
        makeOpen("/vol1/f" + std::to_string(I), OpenWrite | OpenCreate));
    ASSERT_TRUE(O.ok());
    ASSERT_TRUE(runSync(S, *C, makeClose(O.Fh)).ok());
  }
  EXPECT_EQ(40u, Fs.filer(1).processedRequests());
  EXPECT_EQ(0u, Fs.filer(0).processedRequests());
  // The N-blade CPU was busy translating/forwarding nonetheless.
  EXPECT_GT(Fs.filer(0).cpu().completedRequests(), 40u);
}

TEST(Integration, NfsReadAfterCloseAcrossNodes) {
  // Close-to-open semantics (§2.6.1): after A closes, B's open+read sees
  // the written data size.
  Scheduler S;
  NfsFs Fs(S);
  std::unique_ptr<ClientFs> A = Fs.makeClient(0);
  std::unique_ptr<ClientFs> B = Fs.makeClient(1);
  MetaReply O = runSync(S, *A, makeOpen("/f", OpenWrite | OpenCreate));
  ASSERT_TRUE(O.ok());
  ASSERT_TRUE(runSync(S, *A, makeWrite(O.Fh, 4242)).ok());
  ASSERT_TRUE(runSync(S, *A, makeClose(O.Fh)).ok());

  MetaReply OB = runSync(S, *B, makeOpen("/f", OpenRead));
  ASSERT_TRUE(OB.ok());
  MetaReply R = runSync(S, *B, makeRead(OB.Fh, 100000));
  EXPECT_EQ(4242u, R.Bytes);
  EXPECT_TRUE(runSync(S, *B, makeClose(OB.Fh)).ok());
}

TEST(Integration, ReaddirFilesExtensionUnderFramework) {
  registerExtensionPlugins(PluginRegistry::global());
  Scheduler S;
  Cluster C(S, 2, 4);
  NfsFs Fs(S);
  C.mountEverywhere(Fs);
  BenchParams P;
  P.Operations = {"ReaddirFiles"};
  P.ProblemSize = 50; // files per directory listed
  MpiEnvironment Env = MpiEnvironment::uniform(2, 2);
  Master M(C, Env, "nfs", P);
  ResultSet Res = M.runCombination(2, 1);
  for (const ProcessTrace &Proc : Res.Subtasks[0].Processes) {
    EXPECT_EQ(100u, Proc.TotalOps); // 100 listings each
    EXPECT_EQ(0u, Proc.FailedRequests);
  }
}

TEST(Integration, LiveRunThroughAnalysisPipeline) {
  Scheduler S;
  Cluster C(S, 2, 4);
  NfsFs Fs(S);
  C.mountEverywhere(Fs);
  BenchParams P;
  P.Operations = {"StatNocacheFiles"};
  P.ProblemSize = 300;
  MpiEnvironment Env = MpiEnvironment::uniform(2, 2);
  Master M(C, Env, "nfs", P);
  ResultSet Res = M.runCombination(2, 1);
  const SubtaskResult &Sub = Res.Subtasks[0];

  // Interval rows accumulate to the total.
  std::vector<IntervalRow> Rows = intervalSummary(Sub);
  ASSERT_FALSE(Rows.empty());
  EXPECT_EQ(Sub.totalOps(), Rows.back().TotalOps);
  // The TSV protocol has one line per process-interval plus the header.
  size_t ExpectedLines = 1;
  for (const ProcessTrace &Proc : Sub.Processes)
    ExpectedLines += Proc.OpsPerInterval.size();
  std::string Tsv = Sub.toTsv();
  EXPECT_EQ(ExpectedLines,
            static_cast<size_t>(
                std::count(Tsv.begin(), Tsv.end(), '\n')));
  // Summary figures are internally consistent.
  SubtaskSummary Sum = summarize(Sub);
  EXPECT_EQ(600u, Sum.TotalOps);
  EXPECT_GT(Sum.StonewallOpsPerSec, 0.0);
  EXPECT_GE(Sum.WallClockSec, Sum.StonewallSec - 0.1);
}

TEST(Integration, MakeDirsCleansUpEverything) {
  Scheduler S;
  Cluster C(S, 2, 4);
  LustreFs Fs(S);
  C.mountEverywhere(Fs);
  LocalFileSystem *Vol = Fs.mds().volume(LustreFs::VolumeName);
  BenchParams P;
  P.Operations = {"MakeDirs"};
  P.TimeLimit = seconds(1.0);
  P.ProblemSize = 50;
  MpiEnvironment Env = MpiEnvironment::uniform(2, 3);
  Master M(C, Env, "lustre", P);
  ResultSet Res = M.runCombination(2, 2);
  ASSERT_EQ(1u, Res.Subtasks.size());
  EXPECT_GT(Res.Subtasks[0].totalOps(), 100u);
  // Everything the bench created is gone; the volume is consistent.
  EXPECT_LE(Vol->numInodes(), 3u); // root + workdir root
  EXPECT_TRUE(Vol->fsck().clean());
}

TEST(Integration, WritebackRenameChainStaysOrdered) {
  // Mutations acked from the write-back cache must serialize correctly:
  // a rename chain A->B->C leaves exactly C.
  Scheduler S;
  LustreOptions Opts;
  Opts.WritebackMetadata = true;
  LustreFs Fs(S, Opts);
  std::unique_ptr<ClientFs> C = Fs.makeClient(0);
  int Acks = 0;
  auto Count = [&Acks](MetaReply R) {
    EXPECT_TRUE(R.ok());
    ++Acks;
  };
  C->submit(makeMkdir("/a"), Count);
  C->submit(makeRename("/a", "/b"), Count);
  C->submit(makeRename("/b", "/c"), Count);
  S.run();
  EXPECT_EQ(3, Acks);
  EXPECT_EQ(FsError::NoEnt, runSync(S, *C, makeStat("/a")).Err);
  EXPECT_EQ(FsError::NoEnt, runSync(S, *C, makeStat("/b")).Err);
  EXPECT_TRUE(runSync(S, *C, makeStat("/c")).ok());
}

TEST(Integration, EnvProfileCapturesLoad) {
  Scheduler S;
  Cluster C(S, 2, 4);
  NfsFs Fs(S);
  C.mountEverywhere(Fs);
  // A CPU hog is visible as dynamic load in the profile (\S 3.2.6).
  CpuHog Hog(S, C.node(1).cpu(), 8.0, 0, seconds(10.0));
  S.runUntil(seconds(1.0));
  EnvProfile Profile = EnvProfile::capture(C, "nfs");
  EXPECT_EQ(0u, Profile.Nodes[0].ActiveCpuTasks);
  EXPECT_GE(Profile.Nodes[1].ActiveCpuTasks, 1u);
}

TEST(Integration, CxfsScalesAcrossNodesNotWithin) {
  Scheduler S;
  Cluster C(S, 8, 8);
  CxfsFs Fs(S);
  C.mountEverywhere(Fs);
  BenchParams P;
  P.Operations = {"MakeFiles"};
  P.TimeLimit = seconds(2.0);
  P.ProblemSize = 100000;
  MpiEnvironment Env = MpiEnvironment::uniform(8, 5);

  Master M(C, Env, "cxfs", P);
  double OneNodeOneProc =
      stonewallAverage(M.runCombination(1, 1).Subtasks[0]);
  double OneNodeFourProcs =
      stonewallAverage(M.runCombination(1, 4).Subtasks[0]);
  double FourNodesOneProc =
      stonewallAverage(M.runCombination(4, 1).Subtasks[0]);
  // Intra-node: token-serialized, no gain. Inter-node: near-linear.
  EXPECT_LT(OneNodeFourProcs, 1.3 * OneNodeOneProc);
  EXPECT_GT(FourNodesOneProc, 2.5 * OneNodeOneProc);
}

} // namespace
