//===- tests/LintTest.cpp - Unit tests for tools/dmeta-lint ---------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace dmb::lint;
namespace fs = std::filesystem;

namespace {

std::vector<Violation> lintOne(const std::string &RelPath,
                               const std::string &Content) {
  std::vector<Violation> Out;
  lintContent(RelPath, Content, Out);
  return Out;
}

bool hasRule(const std::vector<Violation> &Vs, const std::string &Rule) {
  for (const Violation &V : Vs)
    if (V.Rule == Rule)
      return true;
  return false;
}

/// Fixture that materialises a throwaway repo tree for lintTree().
class LintTreeTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::temp_directory_path() /
           ("dmeta-lint-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(Root);
    fs::create_directories(Root);
  }
  void TearDown() override { fs::remove_all(Root); }

  void write(const std::string &Rel, const std::string &Content) {
    fs::path P = Root / Rel;
    fs::create_directories(P.parent_path());
    std::ofstream(P) << Content;
  }

  std::vector<Violation> lint(size_t *Files = nullptr) {
    return lintTree(Root.string(), Files);
  }

  fs::path Root;
};

// The acceptance criterion for the linter: a host-clock call injected into
// simulation code is caught.
TEST_F(LintTreeTest, WallClockInjectedIntoSimIsCaught) {
  write("src/sim/Clock.cpp",
        "#include <chrono>\n"
        "long nowNs() {\n"
        "  return std::chrono::steady_clock::now().time_since_epoch()"
        ".count();\n"
        "}\n");
  size_t Files = 0;
  std::vector<Violation> Vs = lint(&Files);
  EXPECT_EQ(1u, Files);
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("src/sim/Clock.cpp", Vs[0].File);
  EXPECT_EQ(3, Vs[0].Line);
  EXPECT_EQ("wall-clock", Vs[0].Rule);
  EXPECT_NE(std::string::npos, Vs[0].Message.find("std::chrono"));
  EXPECT_NE(std::string::npos,
            renderViolation(Vs[0]).find("src/sim/Clock.cpp:3: [wall-clock]"));
}

TEST_F(LintTreeTest, GettimeofdayAndTimeCallsAreCaught) {
  write("src/dfs/Probe.cpp", "void f() { gettimeofday(&tv, 0); }\n");
  write("src/cluster/Seed.cpp", "long g() { return time(0); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(2u, Vs.size());
  EXPECT_EQ("wall-clock", Vs[0].Rule);
  EXPECT_EQ("wall-clock", Vs[1].Rule);
}

TEST_F(LintTreeTest, WallClockAllowedOutsideDeterministicScope) {
  // src/analysis post-processes results on the host; the host clock is
  // legal there (and in src/support etc.).
  write("src/analysis/Stamp.cpp",
        "#include <chrono>\n"
        "auto t() { return std::chrono::system_clock::now(); }\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, UnseededRandomnessInTestsIsCaught) {
  write("tests/Flaky.cpp",
        "#include <random>\n"
        "int pick() { std::random_device rd; return rd(); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("randomness", Vs[0].Rule);
  EXPECT_EQ(2, Vs[0].Line);
}

TEST_F(LintTreeTest, DirectSinkStampInDfsIsCaught) {
  // A component stamping the sink directly bypasses the owning
  // scheduler's clock — the trace-clock rule catches it.
  write("src/dfs/Probe.cpp",
        "void f(dmb::OpTraceSink &S, uint64_t Id) {\n"
        "  S.stamp(Id, dmb::TracePoint::NetOut, 0);\n"
        "}\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("trace-clock", Vs[0].Rule);
  EXPECT_EQ(2, Vs[0].Line);
  EXPECT_NE(std::string::npos, Vs[0].Message.find("traceStamp"));
}

TEST(LintContent, TraceClockScopeAndExemptions) {
  // The sink and the scheduler implement the recording; they are exempt.
  EXPECT_TRUE(
      lintOne("src/sim/Trace.cpp", "void f() { R.stamp(1, P, Now); }\n")
          .empty());
  EXPECT_TRUE(lintOne("src/sim/Scheduler.cpp",
                      "void g() { Trace->stamp(Id, P, Now); }\n")
                  .empty());
  // The Scheduler facade calls are the sanctioned spelling everywhere:
  // traceStamp( does not contain a bare "stamp(" token.
  EXPECT_TRUE(lintOne("src/dfs/NfsFs.cpp",
                      "void h() { Sched.traceStamp(P); }\n")
                  .empty());
  // beginOp/finishOp are banned in scope too.
  EXPECT_TRUE(hasRule(lintOne("src/sim/Resource.cpp",
                              "void f() { Sink.beginOp(\"x\", 0); }\n"),
                      "trace-clock"));
  EXPECT_TRUE(hasRule(lintOne("src/dfs/FileServer.cpp",
                              "void f() { Sink.finishOp(1, 0); }\n"),
                      "trace-clock"));
  // Outside src/sim and src/dfs the rule does not apply.
  EXPECT_FALSE(hasRule(lintOne("src/analysis/T.cpp",
                               "void f() { Sink.stamp(1, P, 0); }\n"),
                       "trace-clock"));
  // The suppression escape hatch works.
  EXPECT_TRUE(
      lintOne("src/dfs/X.cpp",
              "void f() { S.stamp(1, P, 0); } // dmeta-lint: allow("
              "trace-clock)\n")
          .empty());
}

TEST_F(LintTreeTest, RawAssertAndCassertInSrcAreCaught) {
  write("src/fs/Tree.cpp",
        "#include <cassert>\n"
        "void f(int n) { assert(n > 0); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(2u, Vs.size());
  EXPECT_EQ("raw-assert", Vs[0].Rule);
  EXPECT_EQ(1, Vs[0].Line);
  EXPECT_EQ("raw-assert", Vs[1].Rule);
  EXPECT_EQ(2, Vs[1].Line);
}

TEST_F(LintTreeTest, AssertInTestsIsFine) {
  // gtest's own machinery may assert; the raw-assert rule is src/-only.
  write("tests/Foo.cpp", "void f(int n) { assert(n > 0); }\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, WrongHeaderGuardIsCaught) {
  write("src/sim/Queue.h",
        "#ifndef QUEUE_H\n"
        "#define QUEUE_H\n"
        "#endif\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("header-guard", Vs[0].Rule);
  EXPECT_NE(std::string::npos,
            Vs[0].Message.find("DMETABENCH_SIM_QUEUE_H"));
}

TEST_F(LintTreeTest, CorrectGuardsPassIncludingBenchAndUmbrella) {
  write("src/sim/Queue.h",
        "#ifndef DMETABENCH_SIM_QUEUE_H\n"
        "#define DMETABENCH_SIM_QUEUE_H\n"
        "#endif\n");
  write("bench/BenchUtil.h",
        "#ifndef DMETABENCH_BENCH_BENCHUTIL_H\n"
        "#define DMETABENCH_BENCH_BENCHUTIL_H\n"
        "#endif\n");
  write("src/dmetabench/DMetabench.h",
        "#ifndef DMETABENCH_DMETABENCH_H\n"
        "#define DMETABENCH_DMETABENCH_H\n"
        "#endif\n");
  size_t Files = 0;
  EXPECT_TRUE(lint(&Files).empty());
  EXPECT_EQ(3u, Files);
}

TEST_F(LintTreeTest, DefineMustImmediatelyFollowIfndef) {
  write("src/sim/Queue.h",
        "#ifndef DMETABENCH_SIM_QUEUE_H\n"
        "#include <vector>\n"
        "#define DMETABENCH_SIM_QUEUE_H\n"
        "#endif\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("header-guard", Vs[0].Rule);
  EXPECT_EQ(2, Vs[0].Line);
}

TEST_F(LintTreeTest, AllowCommentSuppressesFinding) {
  write("src/sim/Clock.cpp",
        "long f() { return time(0); } "
        "// dmeta-lint: allow(wall-clock) boot stamp only\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, StringLiteralsAndCommentsDoNotTrip) {
  write("src/sim/Doc.cpp",
        "// Never call std::rand or time() in sim code.\n"
        "const char *Hint = \"replace std::chrono::steady_clock::now()\";\n"
        "/* block comments are not stripped, but strings are */\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, BareTokenMatchingAvoidsFalsePositives) {
  write("src/sim/Run.cpp",
        "void runtime(int x);\n"
        "void f() { runtime(3); static_assert(1 + 1 == 2); }\n"
        "void g(bool B) { DMB_ASSERT(B, \"must hold\"); }\n");
  EXPECT_TRUE(lint().empty());
}

TEST(LintContent, MultipleRulesOnOneFile) {
  std::vector<Violation> Vs = lintOne("src/sim/Bad.cpp",
                                      "#include <cassert>\n"
                                      "int f() { return rand(); }\n");
  EXPECT_TRUE(hasRule(Vs, "raw-assert"));
  EXPECT_TRUE(hasRule(Vs, "randomness"));
}

TEST(LintErrorTable, InSyncTablePasses) {
  std::string H = "enum class FsError {\n  Ok,\n  NoEnt,\n};\n"
                  "inline constexpr unsigned NumFsErrors = 2;\n";
  std::string Cpp = "switch (E) {\n"
                    "case FsError::Ok: return \"OK\";\n"
                    "case FsError::NoEnt: return \"ENOENT\";\n"
                    "}\n";
  std::vector<Violation> Vs;
  lintErrorTable(H, Cpp, Vs);
  EXPECT_TRUE(Vs.empty());
}

TEST(LintErrorTable, DriftIsCaught) {
  // Enum grew a member but neither the count nor the name table followed.
  std::string H = "enum class FsError {\n  Ok,\n  NoEnt,\n  Stale,\n};\n"
                  "inline constexpr unsigned NumFsErrors = 2;\n";
  std::string Cpp = "switch (E) {\n"
                    "case FsError::Ok: return \"OK\";\n"
                    "case FsError::NoEnt: return \"ENOENT\";\n"
                    "}\n";
  std::vector<Violation> Vs;
  lintErrorTable(H, Cpp, Vs);
  ASSERT_FALSE(Vs.empty());
  for (const Violation &V : Vs)
    EXPECT_EQ("error-table", V.Rule);
}

TEST(LintErrorTable, DuplicateNameIsCaught) {
  std::string H = "enum class FsError {\n  Ok,\n  NoEnt,\n};\n"
                  "inline constexpr unsigned NumFsErrors = 2;\n";
  std::string Cpp = "switch (E) {\n"
                    "case FsError::Ok: return \"OK\";\n"
                    "case FsError::NoEnt: return \"OK\";\n"
                    "}\n";
  std::vector<Violation> Vs;
  lintErrorTable(H, Cpp, Vs);
  EXPECT_TRUE(hasRule(Vs, "error-table"));
}

// The shipped tree must be clean — the same check `ctest` runs via the
// dmeta_lint binary, here exercised through the library.
TEST(LintRealTree, SourceTreeIsClean) {
  size_t Files = 0;
  std::vector<Violation> Vs = lintTree(DMB_SOURCE_ROOT, &Files);
  EXPECT_GT(Files, 100u);
  for (const Violation &V : Vs)
    ADD_FAILURE() << renderViolation(V);
}

} // namespace
