//===- tests/LintTest.cpp - Unit tests for tools/dmeta-lint ---------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace dmb::lint;
namespace fs = std::filesystem;

namespace {

std::vector<Violation> lintOne(const std::string &RelPath,
                               const std::string &Content) {
  std::vector<Violation> Out;
  lintContent(RelPath, Content, Out);
  return Out;
}

bool hasRule(const std::vector<Violation> &Vs, const std::string &Rule) {
  for (const Violation &V : Vs)
    if (V.Rule == Rule)
      return true;
  return false;
}

/// Fixture that materialises a throwaway repo tree for lintTree().
class LintTreeTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::temp_directory_path() /
           ("dmeta-lint-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(Root);
    fs::create_directories(Root);
  }
  void TearDown() override { fs::remove_all(Root); }

  void write(const std::string &Rel, const std::string &Content) {
    fs::path P = Root / Rel;
    fs::create_directories(P.parent_path());
    std::ofstream(P) << Content;
  }

  std::vector<Violation> lint(size_t *Files = nullptr) {
    return lintTree(Root.string(), Files);
  }

  fs::path Root;
};

// The acceptance criterion for the linter: a host-clock call injected into
// simulation code is caught.
TEST_F(LintTreeTest, WallClockInjectedIntoSimIsCaught) {
  write("src/sim/Clock.cpp",
        "#include <chrono>\n"
        "long nowNs() {\n"
        "  return std::chrono::steady_clock::now().time_since_epoch()"
        ".count();\n"
        "}\n");
  size_t Files = 0;
  std::vector<Violation> Vs = lint(&Files);
  EXPECT_EQ(1u, Files);
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("src/sim/Clock.cpp", Vs[0].File);
  EXPECT_EQ(3, Vs[0].Line);
  EXPECT_EQ("wall-clock", Vs[0].Rule);
  EXPECT_NE(std::string::npos, Vs[0].Message.find("std::chrono"));
  EXPECT_NE(std::string::npos,
            renderViolation(Vs[0]).find("src/sim/Clock.cpp:3: [wall-clock]"));
}

TEST_F(LintTreeTest, GettimeofdayAndTimeCallsAreCaught) {
  write("src/dfs/Probe.cpp", "void f() { gettimeofday(&tv, 0); }\n");
  write("src/cluster/Seed.cpp", "long g() { return time(0); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(2u, Vs.size());
  EXPECT_EQ("wall-clock", Vs[0].Rule);
  EXPECT_EQ("wall-clock", Vs[1].Rule);
}

TEST_F(LintTreeTest, WallClockAllowedOutsideDeterministicScope) {
  // src/analysis post-processes results on the host; the host clock is
  // legal there (and in src/support etc.).
  write("src/analysis/Stamp.cpp",
        "#include <chrono>\n"
        "auto t() { return std::chrono::system_clock::now(); }\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, UnseededRandomnessInTestsIsCaught) {
  write("tests/Flaky.cpp",
        "#include <random>\n"
        "int pick() { std::random_device rd; return rd(); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("randomness", Vs[0].Rule);
  EXPECT_EQ(2, Vs[0].Line);
}

TEST_F(LintTreeTest, DirectSinkStampInDfsIsCaught) {
  // A component stamping the sink directly bypasses the owning
  // scheduler's clock — the trace-clock rule catches it.
  write("src/dfs/Probe.cpp",
        "void f(dmb::OpTraceSink &S, uint64_t Id) {\n"
        "  S.stamp(Id, dmb::TracePoint::NetOut, 0);\n"
        "}\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("trace-clock", Vs[0].Rule);
  EXPECT_EQ(2, Vs[0].Line);
  EXPECT_NE(std::string::npos, Vs[0].Message.find("traceStamp"));
}

TEST(LintContent, TraceClockScopeAndExemptions) {
  // The sink and the scheduler implement the recording; they are exempt.
  EXPECT_TRUE(
      lintOne("src/sim/Trace.cpp", "void f() { R.stamp(1, P, Now); }\n")
          .empty());
  EXPECT_TRUE(lintOne("src/sim/Scheduler.cpp",
                      "void g() { Trace->stamp(Id, P, Now); }\n")
                  .empty());
  // The Scheduler facade calls are the sanctioned spelling everywhere:
  // traceStamp( does not contain a bare "stamp(" token.
  EXPECT_TRUE(lintOne("src/dfs/NfsFs.cpp",
                      "void h() { Sched.traceStamp(P); }\n")
                  .empty());
  // beginOp/finishOp are banned in scope too.
  EXPECT_TRUE(hasRule(lintOne("src/sim/Resource.cpp",
                              "void f() { Sink.beginOp(\"x\", 0); }\n"),
                      "trace-clock"));
  EXPECT_TRUE(hasRule(lintOne("src/dfs/FileServer.cpp",
                              "void f() { Sink.finishOp(1, 0); }\n"),
                      "trace-clock"));
  // Outside src/sim and src/dfs the rule does not apply.
  EXPECT_FALSE(hasRule(lintOne("src/analysis/T.cpp",
                               "void f() { Sink.stamp(1, P, 0); }\n"),
                       "trace-clock"));
  // The suppression escape hatch works (with its mandatory justification
  // — a bare allow() would trip suppression-justification).
  EXPECT_TRUE(
      lintOne("src/dfs/X.cpp",
              "void f() { S.stamp(1, P, 0); } // dmeta-lint: allow("
              "trace-clock) sink owns the clock here\n")
          .empty());
}

TEST_F(LintTreeTest, RawAssertAndCassertInSrcAreCaught) {
  write("src/fs/Tree.cpp",
        "#include <cassert>\n"
        "void f(int n) { assert(n > 0); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(2u, Vs.size());
  EXPECT_EQ("raw-assert", Vs[0].Rule);
  EXPECT_EQ(1, Vs[0].Line);
  EXPECT_EQ("raw-assert", Vs[1].Rule);
  EXPECT_EQ(2, Vs[1].Line);
}

TEST_F(LintTreeTest, AssertInTestsIsFine) {
  // gtest's own machinery may assert; the raw-assert rule is src/-only.
  write("tests/Foo.cpp", "void f(int n) { assert(n > 0); }\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, WrongHeaderGuardIsCaught) {
  write("src/sim/Queue.h",
        "#ifndef QUEUE_H\n"
        "#define QUEUE_H\n"
        "#endif\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("header-guard", Vs[0].Rule);
  EXPECT_NE(std::string::npos,
            Vs[0].Message.find("DMETABENCH_SIM_QUEUE_H"));
}

TEST_F(LintTreeTest, CorrectGuardsPassIncludingBenchAndUmbrella) {
  write("src/sim/Queue.h",
        "#ifndef DMETABENCH_SIM_QUEUE_H\n"
        "#define DMETABENCH_SIM_QUEUE_H\n"
        "#endif\n");
  write("bench/BenchUtil.h",
        "#ifndef DMETABENCH_BENCH_BENCHUTIL_H\n"
        "#define DMETABENCH_BENCH_BENCHUTIL_H\n"
        "#endif\n");
  write("src/dmetabench/DMetabench.h",
        "#ifndef DMETABENCH_DMETABENCH_H\n"
        "#define DMETABENCH_DMETABENCH_H\n"
        "#endif\n");
  size_t Files = 0;
  EXPECT_TRUE(lint(&Files).empty());
  EXPECT_EQ(3u, Files);
}

TEST_F(LintTreeTest, DefineMustImmediatelyFollowIfndef) {
  write("src/sim/Queue.h",
        "#ifndef DMETABENCH_SIM_QUEUE_H\n"
        "#include <vector>\n"
        "#define DMETABENCH_SIM_QUEUE_H\n"
        "#endif\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("header-guard", Vs[0].Rule);
  EXPECT_EQ(2, Vs[0].Line);
}

TEST_F(LintTreeTest, AllowCommentSuppressesFinding) {
  write("src/sim/Clock.cpp",
        "long f() { return time(0); } "
        "// dmeta-lint: allow(wall-clock) boot stamp only\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, StringLiteralsAndCommentsDoNotTrip) {
  write("src/sim/Doc.cpp",
        "// Never call std::rand or time() in sim code.\n"
        "const char *Hint = \"replace std::chrono::steady_clock::now()\";\n"
        "/* block comments are stripped too, like strings */\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, MultiLineBlockCommentsDoNotTrip) {
  // The sanitizer carries block-comment state across lines: a banned
  // token on an interior comment line must not fire, while real code
  // after the closing */ must still be scanned.
  write("src/sim/Doc.cpp",
        "/* Design note:\n"
        "   early prototypes read std::chrono and called time(0) here;\n"
        "   the scheduler clock replaced them. */\n"
        "long f();\n"
        "/* inline */ long g() { return time(0); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("wall-clock", Vs[0].Rule);
  EXPECT_EQ(5, Vs[0].Line);
}

TEST_F(LintTreeTest, RawStringLiteralsDoNotTrip) {
  // R"(...)" contents are literal data even across lines, and a
  // custom-delimiter raw string may contain an embedded )" sequence.
  write("src/sim/Fixture.cpp",
        "const char *Tsv = R\"(header\n"
        "std::rand gettimeofday time(0)\n"
        ")\";\n"
        "const char *Odd = R\"x(contains )\" and mt19937)x\";\n"
        "long g() { return time(0); }\n");
  std::vector<Violation> Vs = lint();
  ASSERT_EQ(1u, Vs.size());
  EXPECT_EQ("wall-clock", Vs[0].Rule);
  EXPECT_EQ(5, Vs[0].Line);
}

TEST_F(LintTreeTest, BareTokenMatchingAvoidsFalsePositives) {
  write("src/sim/Run.cpp",
        "void runtime(int x);\n"
        "void f() { runtime(3); static_assert(1 + 1 == 2); }\n"
        "void g(bool B) { DMB_ASSERT(B, \"must hold\"); }\n");
  EXPECT_TRUE(lint().empty());
}

TEST_F(LintTreeTest, ToolsTreeIsWalkedAndLinted) {
  // tools/ is in scope for wall-clock, raw-assert and header-guard: the
  // CLI drives simulations whose results must replay bit-for-bit.
  write("tools/probe/Probe.cpp",
        "#include <cassert>\n"
        "long f() { return time(0); }\n");
  write("tools/probe/Probe.h",
        "#ifndef PROBE_H\n"
        "#define PROBE_H\n"
        "#endif\n");
  size_t Files = 0;
  std::vector<Violation> Vs = lint(&Files);
  EXPECT_EQ(2u, Files);
  EXPECT_TRUE(hasRule(Vs, "raw-assert"));
  EXPECT_TRUE(hasRule(Vs, "wall-clock"));
  EXPECT_TRUE(hasRule(Vs, "header-guard"));
  for (const Violation &V : Vs) {
    if (V.Rule == "header-guard") {
      EXPECT_NE(std::string::npos,
                V.Message.find("DMETABENCH_TOOLS_PROBE_PROBE_H"));
    }
  }
}

TEST(LintContent, EventRefCaptureRule) {
  // A [&] lambda handed to the scheduler outlives its frame — caught in
  // src/ and tools/.
  EXPECT_TRUE(hasRule(lintOne("src/sim/Retry.cpp",
                              "void f() { S.after(5, [&]() { go(); }); }\n"),
                      "event-ref-capture"));
  EXPECT_TRUE(hasRule(lintOne("tools/Cli.cpp",
                              "void f() { S.at(T, [&, N]() { run(N); }); }\n"),
                      "event-ref-capture"));
  // Capturing this or explicit by-value captures are the sanctioned
  // spellings.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Retry.cpp",
              "void f() { S.after(5, [this]() { step(); }); }\n"),
      "event-ref-capture"));
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Retry.cpp",
              "void f() { S.after(5, [N]() { run(N); }); }\n"),
      "event-ref-capture"));
  // A [&] before the call (e.g. an unrelated lambda argument earlier on
  // the line) only counts when it follows the at(/after( token.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Retry.cpp",
              "void f() { sort(B, E, [&](int A, int Z) { return A < Z; }); }"
              "\n"),
      "event-ref-capture"));
  // tests/ and bench/ run the scheduler from the capturing frame itself.
  EXPECT_FALSE(hasRule(lintOne("tests/SimTest.cpp",
                               "TEST(S, T) { S.after(5, [&]() { ++N; }); }\n"),
                       "event-ref-capture"));
  EXPECT_FALSE(hasRule(lintOne("bench/Bench.cpp",
                               "void f() { S.at(T, [&]() { ++N; }); }\n"),
                       "event-ref-capture"));
  // The escape hatch names the rule.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Retry.cpp",
              "void f() { S.after(5, [&]() { go(); }); } "
              "// dmeta-lint: allow(event-ref-capture) frame outlives S\n"),
      "event-ref-capture"));
}

TEST(LintContent, RaiiGuardRule) {
  // Manual lock()/unlock() in a file using a host mutex is caught...
  std::vector<Violation> Vs =
      lintOne("src/support/Pool.cpp",
              "std::mutex M;\n"
              "void f() { M.lock(); work(); M.unlock(); }\n");
  EXPECT_TRUE(hasRule(Vs, "raii-guard"));
  EXPECT_TRUE(hasRule(lintOne("src/support/Pool.cpp",
                              "pthread_mutex_t M;\n"
                              "void f() { pthread_mutex_lock(&M); }\n"),
                      "raii-guard"));
  // ...but RAII guards over the same mutex are the sanctioned spelling.
  EXPECT_FALSE(hasRule(
      lintOne("src/support/Pool.cpp",
              "std::mutex M;\n"
              "void f() { std::lock_guard<std::mutex> G(M); work(); }\n"),
      "raii-guard"));
  // SimMutex has a scheduler-driven lock()/unlock() protocol that RAII
  // cannot express; files without a host mutex type are out of scope.
  EXPECT_FALSE(hasRule(
      lintOne("src/dfs/Locking.cpp",
              "void f(dmb::SimMutex &M) { M.lock(Ctx); M.unlock(); }\n"),
      "raii-guard"));
  // The escape hatch works here too.
  EXPECT_FALSE(hasRule(
      lintOne("src/support/Pool.cpp",
              "std::mutex M;\n"
              "void f() { M.lock(); } // dmeta-lint: allow(raii-guard)\n"),
      "raii-guard"));
}

TEST(LintContent, FaultDeterminismRule) {
  // A sequential Rng stream in fault-policy code ties rolls to event
  // order; an Rng constructed without the policy Seed unties them from
  // the scenario — both caught.
  EXPECT_TRUE(hasRule(
      lintOne("src/sim/Faulty.cpp",
              "void roll(dmb::FaultPolicy &P) { dmb::Rng R; use(R); }\n"),
      "fault-determinism"));
  EXPECT_TRUE(hasRule(
      lintOne("src/sim/Faulty.cpp",
              "struct Link { dmb::FaultPolicy Faults; dmb::Rng FaultRng; "
              "};\n"),
      "fault-determinism"));
  // Deriving the Rng from the policy Seed at the point of use is the
  // sanctioned spelling.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Faulty.cpp",
              "void roll(dmb::FaultPolicy &P, long Now) {\n"
              "  dmb::Rng R(P.Seed ^ mix(Now));\n"
              "}\n"),
      "fault-determinism"));
  // Files that do not handle a FaultPolicy in code are out of scope —
  // stored seeded streams are legal elsewhere (e.g. SnapshotJob)...
  EXPECT_FALSE(hasRule(lintOne("src/workload/Noise.cpp", "dmb::Rng R;\n"),
                       "fault-determinism"));
  // ...and a comment-only mention does not pull a file into scope.
  EXPECT_FALSE(hasRule(
      lintOne("src/workload/Noise.cpp",
              "// pair with a FaultPolicy partition window\n"
              "dmb::Rng R;\n"),
      "fault-determinism"));
  // "Rng" only matches as a whole word.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Faulty.cpp",
              "void f(dmb::FaultPolicy &P) { RngState S; use(S); }\n"),
      "fault-determinism"));
  // The escape hatch names the rule.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Faulty.cpp",
              "void f(dmb::FaultPolicy &P) { dmb::Rng R; use(R); } "
              "// dmeta-lint: allow(fault-determinism) replay-stable\n"),
      "fault-determinism"));
}

TEST(LintContent, EventQueueRule) {
  // A hand-rolled priority queue or heap primitive near the scheduler
  // bypasses sim/EventQueue's tie discipline — caught in src/, bench/
  // and tools/.
  EXPECT_TRUE(hasRule(
      lintOne("src/sim/Timers.cpp",
              "std::priority_queue<Ev> Q;\n"),
      "event-queue"));
  EXPECT_TRUE(hasRule(
      lintOne("tools/Cli.cpp",
              "void f() { std::push_heap(H.begin(), H.end()); }\n"),
      "event-queue"));
  EXPECT_TRUE(hasRule(
      lintOne("bench/Bench.cpp",
              "void f() { std::pop_heap(H.begin(), H.end()); }\n"),
      "event-queue"));
  EXPECT_TRUE(hasRule(
      lintOne("src/core/Sched.cpp",
              "void f() { std::make_heap(H.begin(), H.end()); }\n"),
      "event-queue"));
  // The EventQueue implementation itself is the one sanctioned home.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/EventQueue.cpp",
              "void f() { std::push_heap(H.begin(), H.end()); }\n"),
      "event-queue"));
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/EventQueue.h",
              "std::priority_queue<Ev> Q;\n"),
      "event-queue"));
  // Identifiers merely containing the token do not fire.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Timers.cpp",
              "void f() { my_push_heap(H); }\n"),
      "event-queue"));
  // The escape hatch names the rule.
  EXPECT_FALSE(hasRule(
      lintOne("src/sim/Timers.cpp",
              "std::priority_queue<Ev> Q; // dmeta-lint: allow("
              "event-queue) not scheduling, a top-k result buffer\n"),
      "event-queue"));
}

TEST(LintContent, AllowHatchIsRuleSpecific) {
  // An allow() naming a different rule must not suppress the finding,
  // and one allow() does not blanket the whole line's other findings.
  std::vector<Violation> Vs = lintOne(
      "src/sim/Clock.cpp",
      "long f() { return time(0); } // dmeta-lint: allow(randomness)\n");
  EXPECT_TRUE(hasRule(Vs, "wall-clock"));
  Vs = lintOne("src/sim/Clock.cpp",
               "long f() { srand(1); return time(0); } "
               "// dmeta-lint: allow(wall-clock)\n");
  EXPECT_FALSE(hasRule(Vs, "wall-clock"));
  EXPECT_TRUE(hasRule(Vs, "randomness"));
}

TEST(LintContent, MultipleRulesOnOneFile) {
  std::vector<Violation> Vs = lintOne("src/sim/Bad.cpp",
                                      "#include <cassert>\n"
                                      "int f() { return rand(); }\n");
  EXPECT_TRUE(hasRule(Vs, "raw-assert"));
  EXPECT_TRUE(hasRule(Vs, "randomness"));
}

TEST(LintErrorTable, InSyncTablePasses) {
  std::string H = "enum class FsError {\n  Ok,\n  NoEnt,\n};\n"
                  "inline constexpr unsigned NumFsErrors = 2;\n";
  std::string Cpp = "switch (E) {\n"
                    "case FsError::Ok: return \"OK\";\n"
                    "case FsError::NoEnt: return \"ENOENT\";\n"
                    "}\n";
  std::vector<Violation> Vs;
  lintErrorTable(H, Cpp, Vs);
  EXPECT_TRUE(Vs.empty());
}

TEST(LintErrorTable, DriftIsCaught) {
  // Enum grew a member but neither the count nor the name table followed.
  std::string H = "enum class FsError {\n  Ok,\n  NoEnt,\n  Stale,\n};\n"
                  "inline constexpr unsigned NumFsErrors = 2;\n";
  std::string Cpp = "switch (E) {\n"
                    "case FsError::Ok: return \"OK\";\n"
                    "case FsError::NoEnt: return \"ENOENT\";\n"
                    "}\n";
  std::vector<Violation> Vs;
  lintErrorTable(H, Cpp, Vs);
  ASSERT_FALSE(Vs.empty());
  for (const Violation &V : Vs)
    EXPECT_EQ("error-table", V.Rule);
}

TEST(LintErrorTable, DuplicateNameIsCaught) {
  std::string H = "enum class FsError {\n  Ok,\n  NoEnt,\n};\n"
                  "inline constexpr unsigned NumFsErrors = 2;\n";
  std::string Cpp = "switch (E) {\n"
                    "case FsError::Ok: return \"OK\";\n"
                    "case FsError::NoEnt: return \"OK\";\n"
                    "}\n";
  std::vector<Violation> Vs;
  lintErrorTable(H, Cpp, Vs);
  EXPECT_TRUE(hasRule(Vs, "error-table"));
}

// The shipped tree must be clean — the same check `ctest` runs via the
// dmeta_lint binary, here exercised through the library.
TEST(LintRealTree, SourceTreeIsClean) {
  size_t Files = 0;
  std::vector<Violation> Vs = lintTree(DMB_SOURCE_ROOT, &Files);
  EXPECT_GT(Files, 100u);
  for (const Violation &V : Vs)
    ADD_FAILURE() << renderViolation(V);
}

} // namespace
