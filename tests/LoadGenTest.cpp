//===- tests/LoadGenTest.cpp - Open-loop load generator tests -------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/LoadGenerator.h"
#include "dfs/NfsFs.h"
#include "cluster/Cluster.h"
#include <gtest/gtest.h>

using namespace dmb;

namespace {

LoadResult runAt(double OpsPerSec) {
  Scheduler S;
  NfsOptions Opts;
  Opts.Server.EnableConsistencyPoints = false;
  Opts.Client.RpcSlots = 256;
  NfsFs Fs(S, Opts);
  std::unique_ptr<ClientFs> C = Fs.makeClient(0);
  LoadConfig Cfg;
  Cfg.OfferedOpsPerSec = OpsPerSec;
  Cfg.Duration = seconds(3.0);
  Cfg.FileSetSize = 50;
  return runOpenLoopLoad(S, *C, Cfg);
}

TEST(LoadGen, LaddisMixSharesSumSensibly) {
  std::vector<MixEntry> Mix = laddisMix();
  double NameAttr = 0, Io = 0, Total = 0;
  for (const MixEntry &E : Mix) {
    Total += E.Weight;
    if (E.Op == MetaOp::Stat)
      NameAttr += E.Weight;
    if (E.Op == MetaOp::Read || E.Op == MetaOp::Write)
      Io += E.Weight;
  }
  // "Half file name and attribute operations, roughly one-third I/O".
  EXPECT_NEAR(0.5, NameAttr / Total, 0.05);
  EXPECT_NEAR(0.33, Io / Total, 0.05);
}

TEST(LoadGen, LowLoadAchievesOfferedRate) {
  LoadResult R = runAt(500);
  EXPECT_NEAR(500.0, R.AchievedOpsPerSec, 75.0);
  EXPECT_EQ(0u, R.Failed);
  EXPECT_EQ(R.Submitted, R.Completed);
  EXPECT_LT(R.MeanLatencyMs, 5.0);
}

TEST(LoadGen, OverloadSaturatesAndQueues) {
  LoadResult Low = runAt(1000);
  LoadResult Over = runAt(50000);
  // Achieved throughput stalls below the offered rate...
  EXPECT_LT(Over.AchievedOpsPerSec, 35000.0);
  // ...and latency explodes relative to the uncontended case.
  EXPECT_GT(Over.MeanLatencyMs, 20 * Low.MeanLatencyMs);
  // Everything still completes eventually (the drain).
  EXPECT_EQ(Over.Submitted, Over.Completed);
}

TEST(LoadGen, DeterministicForFixedSeed) {
  LoadResult A = runAt(2000);
  LoadResult B = runAt(2000);
  EXPECT_EQ(A.Submitted, B.Submitted);
  EXPECT_DOUBLE_EQ(A.MeanLatencyMs, B.MeanLatencyMs);
}

TEST(Cluster, HeterogeneousNodes) {
  Scheduler S;
  Cluster C(S, 2, 4);
  ClusterNode &Big = C.addNode(64, "altix-part1");
  EXPECT_EQ(3u, C.numNodes());
  EXPECT_EQ(2u, Big.index());
  EXPECT_EQ(64u, C.node(2).cpu().numCores());
  EXPECT_EQ("altix-part1", C.node(2).hostname());
  NfsFs Fs(S);
  C.mountEverywhere(Fs);
  EXPECT_NE(nullptr, C.node(2).mount("nfs"));
}

} // namespace
