//===- tests/PluginSweepTest.cpp - Plugin x plan property sweep -----------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property sweep: every fixed-problem-size plugin of Table 3.5, run over
/// the complete execution plan of the thesis's 3x3 example layout
/// (Table 3.3), must complete exactly ProblemSize operations per process
/// in every combination, with no failed requests and a clean server
/// volume afterwards.
///
//===----------------------------------------------------------------------===//

#include "dmetabench/DMetabench.h"
#include <gtest/gtest.h>

using namespace dmb;

namespace {

class PluginSweepTest : public ::testing::TestWithParam<const char *> {};

TEST_P(PluginSweepTest, ExactCountsOverTheWholePlan) {
  const char *Op = GetParam();
  Scheduler S;
  Cluster C(S, 3, 4);
  NfsOptions Opts;
  Opts.Server.EnableConsistencyPoints = false;
  NfsFs Fs(S, Opts);
  C.mountEverywhere(Fs);

  BenchParams P;
  P.Operations = {Op};
  P.ProblemSize = 60;
  MpiEnvironment Env = MpiEnvironment::uniform(3, 3);
  Master M(C, Env, "nfs", P);
  ResultSet Results = M.run();
  // Table 3.3: eight feasible combinations.
  ASSERT_EQ(8u, Results.Subtasks.size());

  bool SharedDir = std::string(Op) == "MakeOnedirFiles";
  for (const SubtaskResult &Sub : Results.Subtasks) {
    unsigned Procs = Sub.totalProcesses();
    ASSERT_EQ(Sub.NumNodes * Sub.PerNode, Procs);
    for (const ProcessTrace &Proc : Sub.Processes) {
      // MakeOnedirFiles divides the total; the others are per process.
      uint64_t Expected = SharedDir ? std::max<uint64_t>(1, 60 / Procs)
                                    : 60;
      EXPECT_EQ(Expected, Proc.TotalOps)
          << Op << " " << Sub.NumNodes << "x" << Sub.PerNode;
      EXPECT_EQ(0u, Proc.FailedRequests)
          << Op << " " << Sub.NumNodes << "x" << Sub.PerNode;
      // Consistency of the trace itself.
      uint64_t Summed = 0;
      for (uint64_t B : Proc.OpsPerInterval)
        Summed += B;
      EXPECT_EQ(Proc.TotalOps, Summed);
    }
  }

  // After all cleanups only the per-subtask workdir roots remain, and the
  // volume is structurally consistent.
  LocalFileSystem *Vol = Fs.server().volume(NfsFs::VolumeName);
  EXPECT_LE(Vol->numInodes(), 1u + 1u + 8u); // root + /dmetabench + roots
  EXPECT_TRUE(Vol->fsck().clean());
}

INSTANTIATE_TEST_SUITE_P(FixedSizePlugins, PluginSweepTest,
                         ::testing::Values("DeleteFiles", "StatFiles",
                                           "StatNocacheFiles",
                                           "StatMultinodeFiles",
                                           "OpenCloseFiles",
                                           "MakeOnedirFiles"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

/// Time-limited plugins over the plan: every process stops at the limit.
class TimedSweepTest : public ::testing::TestWithParam<const char *> {};

TEST_P(TimedSweepTest, EveryProcessHonoursTheTimeLimit) {
  const char *Op = GetParam();
  Scheduler S;
  Cluster C(S, 3, 4);
  NfsOptions Opts;
  Opts.Server.EnableConsistencyPoints = false;
  NfsFs Fs(S, Opts);
  C.mountEverywhere(Fs);

  BenchParams P;
  P.Operations = {Op};
  P.ProblemSize = 40; // rollover limit
  P.TimeLimit = seconds(0.8);
  MpiEnvironment Env = MpiEnvironment::uniform(3, 3);
  Master M(C, Env, "nfs", P);
  ResultSet Results = M.run();
  ASSERT_EQ(8u, Results.Subtasks.size());
  for (const SubtaskResult &Sub : Results.Subtasks)
    for (const ProcessTrace &Proc : Sub.Processes) {
      EXPECT_GT(Proc.TotalOps, 0u);
      EXPECT_GE(toSeconds(Proc.FinishOffset), 0.75);
      EXPECT_LT(toSeconds(Proc.FinishOffset), 1.2);
      EXPECT_EQ(0u, Proc.FailedRequests);
    }
  EXPECT_TRUE(Fs.server().volume(NfsFs::VolumeName)->fsck().clean());
}

INSTANTIATE_TEST_SUITE_P(TimedPlugins, TimedSweepTest,
                         ::testing::Values("MakeFiles", "MakeFiles64byte",
                                           "MakeFiles65byte", "MakeDirs"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

} // namespace
