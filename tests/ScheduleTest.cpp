//===- tests/ScheduleTest.cpp - Concurrency-correctness suite -------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the three opt-in concurrency analyzers: schedule
/// perturbation + verifySchedules(), the lock-order deadlock analyzer and
/// the happens-before race tracker. The tier-1 invariance tests at the
/// bottom rerun real benchmark scenarios under permuted schedules and
/// assert the canonical results are bit-identical — the same check
/// `dmetabench verify-schedules` runs from the CLI.
///
//===----------------------------------------------------------------------===//

#include "analysis/Preprocess.h"
#include "dmetabench/DMetabench.h"
#include "sim/Mutex.h"
#include <algorithm>
#include <gtest/gtest.h>
#include <memory>
#include <numeric>

using namespace dmb;

namespace {

/// Runs \p N same-timestamp events and returns the order they fired in.
std::vector<unsigned> tieOrder(unsigned N, bool Perturb, uint64_t Seed) {
  Scheduler S;
  if (Perturb)
    S.enableSchedulePerturbation(Seed);
  std::vector<unsigned> Order;
  for (unsigned I = 0; I < N; ++I)
    S.at(milliseconds(1), [&Order, I] { Order.push_back(I); });
  S.run();
  return Order;
}

TEST(SchedulePerturbation, NonzeroSeedPermutesSameTimestampTies) {
  std::vector<unsigned> Default = tieOrder(16, false, 0);
  std::vector<unsigned> Identity(16);
  std::iota(Identity.begin(), Identity.end(), 0u);
  EXPECT_EQ(Identity, Default); // insertion order by default

  std::vector<unsigned> Permuted = tieOrder(16, true, 12345);
  EXPECT_NE(Identity, Permuted); // ties actually reordered
  std::vector<unsigned> Sorted = Permuted;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Identity, Sorted); // ...but it is a permutation, nothing lost

  // The same seed reproduces the same schedule; a different seed is free
  // to (and here does) pick a different one.
  EXPECT_EQ(Permuted, tieOrder(16, true, 12345));
  EXPECT_NE(Permuted, tieOrder(16, true, 54321));
}

TEST(SchedulePerturbation, SeedZeroIsTheIdentityPermutation) {
  // Satellite: perturbation-with-identity must be bit-identical to the
  // default scheduler — same order, same journal, and the seed state
  // must not leak into determinism-relevant observables.
  std::vector<unsigned> Identity(16);
  std::iota(Identity.begin(), Identity.end(), 0u);
  EXPECT_EQ(Identity, tieOrder(16, true, 0));

  Scheduler A, B;
  B.enableSchedulePerturbation(0);
  EXPECT_FALSE(A.perturbingSchedules());
  EXPECT_FALSE(B.perturbingSchedules());
  A.enableEventJournal();
  B.enableEventJournal();
  for (Scheduler *S : {&A, &B}) {
    S->at(milliseconds(2), [] {});
    S->at(milliseconds(1), [] {});
    S->at(milliseconds(1), [] {});
    S->run();
  }
  EXPECT_TRUE(A.eventJournal() == B.eventJournal());
  EXPECT_EQ(A.checkQuiescent().render(), B.checkQuiescent().render());
}

TEST(SchedulePerturbation, TimeOrderIsNeverPermuted) {
  // Perturbation breaks ties only; events at distinct timestamps keep
  // their clock order under every seed.
  for (uint64_t Seed : {1u, 7u, 99u}) {
    Scheduler S;
    S.enableSchedulePerturbation(Seed);
    std::vector<int> Order;
    S.at(milliseconds(3), [&Order] { Order.push_back(3); });
    S.at(milliseconds(1), [&Order] { Order.push_back(1); });
    S.at(milliseconds(2), [&Order] { Order.push_back(2); });
    S.run();
    EXPECT_EQ((std::vector<int>{1, 2, 3}), Order) << "seed " << Seed;
  }
}

TEST(SchedulePerturbation, JournalRecordsEveryExecutedEvent) {
  Scheduler S;
  S.enableEventJournal();
  S.at(milliseconds(1), [&S] { S.after(milliseconds(1), [] {}); });
  S.at(milliseconds(1), [] {});
  S.run();
  ASSERT_EQ(3u, S.eventJournal().size());
  EXPECT_EQ(S.executedEvents(), S.eventJournal().size());
  EXPECT_EQ(milliseconds(1), S.eventJournal()[0].When);
  EXPECT_EQ(0u, S.eventJournal()[0].Seq);
  EXPECT_EQ(milliseconds(2), S.eventJournal()[2].When);
}

TEST(SchedulePerturbationDeathTest, EnablingMidRunIsFatal) {
  Scheduler S;
  S.at(milliseconds(1), [] {});
  EXPECT_DEATH(S.enableSchedulePerturbation(7),
               "before any event is scheduled");
}

// --- verifySchedules -----------------------------------------------------

TEST(VerifySchedules, OrderIndependentScenarioPasses) {
  ScheduleScenario Sc;
  Sc.Name = "commutative-sum";
  Sc.Run = [](Scheduler &S) {
    long Sum = 0;
    for (long I = 1; I <= 8; ++I)
      S.at(milliseconds(1), [&Sum, I] { Sum += I; });
    S.run();
    return std::to_string(Sum);
  };
  ScheduleVerifyResult R = verifySchedules(Sc);
  EXPECT_TRUE(R.passed());
  EXPECT_TRUE(R.IdentityIdentical);
  EXPECT_TRUE(R.Deterministic);
  EXPECT_EQ(8u, R.SchedulesRun);
  EXPECT_NE(std::string::npos, R.Report.find("invariant under 8"));
}

TEST(VerifySchedules, OrderDependentScenarioIsCaughtWithEventPair) {
  // X ends at ((1*2)+3)*5+7 = 32 in insertion order; any tie swap changes
  // it, because the updates do not commute.
  ScheduleScenario Sc;
  Sc.Name = "noncommutative-updates";
  Sc.Run = [](Scheduler &S) {
    long X = 1;
    S.at(milliseconds(1), [&X] { X *= 2; });
    S.at(milliseconds(1), [&X] { X += 3; });
    S.at(milliseconds(1), [&X] { X *= 5; });
    S.at(milliseconds(1), [&X] { X += 7; });
    S.run();
    return "X=" + std::to_string(X);
  };
  ScheduleVerifyResult R = verifySchedules(Sc);
  EXPECT_FALSE(R.passed());
  EXPECT_TRUE(R.IdentityIdentical); // seed 0 still matches exactly
  EXPECT_FALSE(R.Deterministic);
  // The report names the first event pair where the schedules diverged
  // and the first differing output line.
  EXPECT_NE(std::string::npos, R.Report.find("schedule-dependent"));
  EXPECT_NE(std::string::npos, R.Report.find("first divergence at event"));
  EXPECT_NE(std::string::npos, R.Report.find("baseline ran seq"));
  EXPECT_NE(std::string::npos, R.Report.find("permuted ran seq"));
  EXPECT_NE(std::string::npos, R.Report.find("First differing output line"));
  EXPECT_NE(std::string::npos, R.Report.find("X="));
}

TEST(VerifySchedules, RefusesToVerifyEmptyOutput) {
  // An empty result compares equal to itself under any schedule; treating
  // that as "verified" would hide harness bugs (see PR history: a
  // placement mistake once made the CLI scenarios produce zero subtasks).
  ScheduleScenario Sc;
  Sc.Name = "empty";
  Sc.Run = [](Scheduler &S) {
    S.run();
    return std::string();
  };
  ScheduleVerifyResult R = verifySchedules(Sc);
  EXPECT_FALSE(R.passed());
  EXPECT_NE(std::string::npos, R.Report.find("produced no output"));
}

// --- Lock-order analyzer -------------------------------------------------

TEST(LockOrder, OppositeOrderAcquisitionIsACycleWithoutADeadlock) {
  // op1 takes A then B at t=1ms; op2 takes B then A at t=5ms, long after
  // op1 released both. Nothing ever blocks, yet under some schedule the
  // two interleave and deadlock — the analyzer reports the potential.
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  S.enableLockOrderAnalysis();
  SimMutex A(S, "A"), B(S, "B");

  auto LockBoth = [&S](SimMutex &First, SimMutex &Second, const char *Op) {
    uint64_t T = S.traceBegin(Op);
    First.lock([&S, &First, &Second, T] {
      Second.lock([&S, &First, &Second, T] {
        Second.unlock();
        First.unlock();
        S.traceFinish(T);
      });
    });
  };
  S.at(milliseconds(1), [&] { LockBoth(A, B, "op1"); });
  S.at(milliseconds(5), [&] { LockBoth(B, A, "op2"); });
  S.run();

  ASSERT_TRUE(S.lockOrder());
  ASSERT_EQ(1u, S.lockOrder()->cycles().size());

  // The finding lands in the standard quiescence diagnostics, with the
  // sim times and trace ids of the acquisitions that formed each edge.
  std::string R = S.checkQuiescent().render();
  EXPECT_NE(std::string::npos, R.find("potential deadlock"));
  EXPECT_NE(std::string::npos, R.find("SimMutex A"));
  EXPECT_NE(std::string::npos, R.find("SimMutex B"));
  EXPECT_NE(std::string::npos, R.find("t=0.001000s"));
  EXPECT_NE(std::string::npos, R.find("t=0.005000s"));
  EXPECT_NE(std::string::npos, R.find("trace id 1"));
  EXPECT_NE(std::string::npos, R.find("trace id 2"));
}

TEST(LockOrder, ConsistentOrderIsClean) {
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  S.enableLockOrderAnalysis();
  SimMutex A(S, "A"), B(S, "B");
  auto LockBoth = [&S, &A, &B](const char *Op) {
    uint64_t T = S.traceBegin(Op);
    A.lock([&S, &A, &B, T] {
      B.lock([&S, &A, &B, T] {
        B.unlock();
        A.unlock();
        S.traceFinish(T);
      });
    });
  };
  S.at(milliseconds(1), [&] { LockBoth("op1"); });
  S.at(milliseconds(1), [&] { LockBoth("op2"); });
  S.run();
  EXPECT_TRUE(S.lockOrder()->cycles().empty());
  EXPECT_TRUE(S.checkQuiescent().clean());
}

TEST(LockOrder, GraphDetectsCyclesAcrossPrimitiveKinds) {
  // Unit-level: the graph is primitive-agnostic, so a mutex/resource
  // mixed cycle is found just like a mutex/mutex one. Each cycle is
  // reported once, however often it is re-observed.
  LockOrderGraph G;
  int A = 0, R = 0; // addresses stand in for primitives
  G.onRequest(&A, "SimMutex meta-token", 1, milliseconds(1));
  G.onGranted(&A, 1);
  G.onRequest(&R, "Resource mds-cpu", 1, milliseconds(2));
  G.onGranted(&R, 1);
  G.onReleased(&R, 1);
  G.onReleased(&A, 1);

  G.onRequest(&R, "Resource mds-cpu", 2, milliseconds(5));
  G.onGranted(&R, 2);
  G.onRequest(&A, "SimMutex meta-token", 2, milliseconds(6));
  ASSERT_EQ(1u, G.cycles().size());
  EXPECT_NE(std::string::npos, G.cycles()[0].Detail.find("SimMutex"));
  EXPECT_NE(std::string::npos, G.cycles()[0].Detail.find("Resource"));

  // Re-observing the same inversion does not duplicate the finding.
  G.onGranted(&A, 2);
  G.onReleased(&A, 2);
  G.onReleased(&R, 2);
  G.onRequest(&R, "Resource mds-cpu", 3, milliseconds(7));
  G.onGranted(&R, 3);
  G.onRequest(&A, "SimMutex meta-token", 3, milliseconds(8));
  EXPECT_EQ(1u, G.cycles().size());
}

TEST(LockOrder, UntracedContextsCarryNoIdentity) {
  // Without a trace sink every acquisition runs as context 0, which the
  // analyzer skips: "held by nobody" cannot order anything.
  Scheduler S;
  S.enableLockOrderAnalysis();
  SimMutex A(S, "A"), B(S, "B");
  S.at(milliseconds(1), [&] {
    A.lock([&] {
      B.lock([&] {
        B.unlock();
        A.unlock();
      });
    });
  });
  S.at(milliseconds(5), [&] {
    B.lock([&] {
      A.lock([&] {
        A.unlock();
        B.unlock();
      });
    });
  });
  S.run();
  EXPECT_TRUE(S.lockOrder()->cycles().empty());
}

TEST(LockOrder, RealBenchmarkScenarioIsCycleFree) {
  // Acceptance check: the shipped file-system models acquire their
  // primitives in a consistent order, so a real traced run reports no
  // potential deadlocks.
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  S.enableLockOrderAnalysis();
  Cluster C(S, 2, 4);
  LustreFs Fs(S);
  C.mountEverywhere(Fs);
  BenchParams P;
  P.Operations = {"MakeFiles", "StatFiles"};
  P.ProblemSize = 150;
  P.TimeLimit = seconds(1.0);
  MpiEnvironment Env = MpiEnvironment::uniform(2, 3);
  Master M(C, Env, "lustre", P);
  ResultSet Res = M.runCombination(2, 2);
  ASSERT_FALSE(Res.Subtasks.empty());
  EXPECT_TRUE(S.lockOrder()->cycles().empty());
  EXPECT_EQ(std::string::npos, Res.Diagnostics.find("potential deadlock"));
}

// --- Happens-before tracker ----------------------------------------------

TEST(HappensBefore, UnsynchronizedSameTimeWritesAreFlagged) {
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  S.enableHappensBeforeTracking();
  int Shared = 0;
  auto WriteOnce = [&](const char *Op) {
    uint64_t T = S.traceBegin(Op);
    DMB_HB_WRITE(S, Shared, "Shared");
    S.traceFinish(T);
  };
  S.at(milliseconds(1), [&] { WriteOnce("op1"); });
  S.at(milliseconds(1), [&] { WriteOnce("op2"); });
  S.run();

  ASSERT_TRUE(S.happensBefore());
  ASSERT_EQ(1u, S.happensBefore()->findings().size());
  const HBTracker::Finding &F = S.happensBefore()->findings()[0];
  EXPECT_EQ("Shared", F.Location);
  EXPECT_TRUE(F.WriteA);
  EXPECT_TRUE(F.WriteB);
  EXPECT_EQ(milliseconds(1), F.At);
  std::string R = S.checkQuiescent().render();
  EXPECT_NE(std::string::npos, R.find("unsynchronized"));
  EXPECT_NE(std::string::npos, R.find("Shared"));
}

TEST(HappensBefore, DifferentSimTimesAreOrderedByTheClock) {
  // The scheduler always fires the earlier timestamp first and
  // perturbation permutes ties only, so cross-time accesses can never
  // race — the tracker must not flag them.
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  S.enableHappensBeforeTracking();
  int Shared = 0;
  auto WriteOnce = [&](const char *Op) {
    uint64_t T = S.traceBegin(Op);
    DMB_HB_WRITE(S, Shared, "Shared");
    S.traceFinish(T);
  };
  S.at(milliseconds(1), [&] { WriteOnce("op1"); });
  S.at(milliseconds(2), [&] { WriteOnce("op2"); });
  S.run();
  EXPECT_TRUE(S.happensBefore()->findings().empty());
}

TEST(HappensBefore, MutexHandoffOrdersSameTimeAccesses) {
  // Both critical sections run at the same sim time (lock grants are
  // zero-delay events), but the unlock→grant handoff is a sync edge, so
  // the second writer knows about the first: no race.
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  S.enableHappensBeforeTracking();
  SimMutex M(S, "m");
  int Shared = 0;
  auto WriteLocked = [&](const char *Op) {
    uint64_t T = S.traceBegin(Op);
    M.lock([&S, &M, &Shared, T] {
      DMB_HB_WRITE(S, Shared, "Shared");
      M.unlock();
      S.traceFinish(T);
    });
  };
  S.at(milliseconds(1), [&] { WriteLocked("op1"); });
  S.at(milliseconds(1), [&] { WriteLocked("op2"); });
  S.run();
  EXPECT_TRUE(S.happensBefore()->findings().empty());
  EXPECT_TRUE(S.checkQuiescent().clean());
}

TEST(HappensBefore, SameTimeReadersDoNotConflict) {
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  S.enableHappensBeforeTracking();
  int Shared = 0;
  auto ReadOnce = [&](const char *Op) {
    uint64_t T = S.traceBegin(Op);
    DMB_HB_READ(S, Shared, "Shared");
    S.traceFinish(T);
  };
  S.at(milliseconds(1), [&] { ReadOnce("op1"); });
  S.at(milliseconds(1), [&] { ReadOnce("op2"); });
  S.run();
  EXPECT_TRUE(S.happensBefore()->findings().empty());
}

TEST(HappensBefore, UntracedAccessesAreSkipped) {
  Scheduler S; // no sink: every context is 0
  S.enableHappensBeforeTracking();
  int Shared = 0;
  S.at(milliseconds(1), [&] { DMB_HB_WRITE(S, Shared, "Shared"); });
  S.at(milliseconds(1), [&] { DMB_HB_WRITE(S, Shared, "Shared"); });
  S.run();
  EXPECT_TRUE(S.happensBefore()->findings().empty());
}

// --- Tier-1 scenario invariance (the verify-schedules ctest) -------------

/// The same scenarios `dmetabench verify-schedules` runs: a full Master
/// benchmark on a simulated cluster, canonicalized with
/// canonicalResultText() so rank relabeling at permuted ties (queue
/// positions decide which rank gets which timeline) does not count as a
/// difference.
ScheduleScenario benchScenario(std::string Name, const std::string &FsName,
                               std::vector<std::string> Ops) {
  ScheduleScenario Sc;
  Sc.Name = std::move(Name);
  Sc.Run = [FsName, Ops](Scheduler &S) {
    Cluster C(S, 2, 4);
    std::unique_ptr<DistributedFs> Fs;
    if (FsName == "nfs")
      Fs = std::make_unique<NfsFs>(S);
    else
      Fs = std::make_unique<LustreFs>(S);
    C.mountEverywhere(*Fs);
    BenchParams P;
    P.Operations = Ops;
    P.ProblemSize = 150;
    P.TimeLimit = seconds(1.0);
    // Ppn + 1: rank 0 on the fullest node becomes the master (§ 3.3.4)
    // and is not placeable as a worker.
    MpiEnvironment Env = MpiEnvironment::uniform(2, 3);
    Master M(C, Env, FsName, P);
    return canonicalResultText(M.runCombination(2, 2));
  };
  return Sc;
}

TEST(VerifySchedules, NfsBenchmarkIsInvariantUnderPermutedSchedules) {
  ScheduleVerifyResult R = verifySchedules(
      benchScenario("nfs-makefiles-statfiles", "nfs",
                    {"MakeFiles", "StatFiles"}));
  EXPECT_TRUE(R.IdentityIdentical);
  EXPECT_TRUE(R.Deterministic) << R.Report;
  EXPECT_EQ(8u, R.SchedulesRun);
}

TEST(VerifySchedules, LustreBenchmarkIsInvariantUnderPermutedSchedules) {
  ScheduleVerifyResult R = verifySchedules(
      benchScenario("lustre-makefiles", "lustre", {"MakeFiles"}));
  EXPECT_TRUE(R.IdentityIdentical);
  EXPECT_TRUE(R.Deterministic) << R.Report;
  EXPECT_EQ(8u, R.SchedulesRun);
}

} // namespace
