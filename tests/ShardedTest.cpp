//===- tests/ShardedTest.cpp - Sharded metadata service -------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the sharded metadata service (dfs/ShardedFs.h): the GIGA+
/// partition map and placement functions, namespace semantics through the
/// client's virtual-to-physical translation, incremental splitting of a
/// hot directory, the StaleMap redirect protocol (including the redirect
/// that is answered from a migrated duplicate-request-cache entry), rename
/// semantics across shards, and the tier-1 pinned benchmark scenario with
/// its schedule-invariance twin.
///
//===----------------------------------------------------------------------===//

#include "dmetabench/DMetabench.h"
#include <algorithm>
#include <bit>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

using namespace dmb;

namespace {

/// Submits \p Req and runs the simulation until the reply arrives.
MetaReply runSync(Scheduler &S, ClientFs &C, MetaRequest Req) {
  MetaReply Out;
  bool Got = false;
  C.submit(Req, [&](MetaReply R) {
    Out = std::move(R);
    Got = true;
  });
  S.run();
  EXPECT_TRUE(Got) << "operation did not complete";
  return Out;
}

/// Creates an empty file through the client (open/close).
FsError touch(Scheduler &S, ClientFs &C, const std::string &Path) {
  MetaReply R = runSync(S, C, makeOpen(Path, OpenWrite | OpenCreate));
  if (!R.ok())
    return R.Err;
  return runSync(S, C, makeClose(R.Fh)).Err;
}

//===----------------------------------------------------------------------===//
// Partition map and placement units
//===----------------------------------------------------------------------===//

TEST(Sharded, PartitionOfWalksTheBitmap) {
  // A single partition swallows every hash.
  for (uint64_t H : {0ull, 1ull, 63ull, 0xdeadbeefull})
    EXPECT_EQ(0u, PartitionMap::partitionOf(H, 0b1));
  // Depth-1 split: the low bit decides.
  EXPECT_EQ(0u, PartitionMap::partitionOf(6, 0b11));
  EXPECT_EQ(1u, PartitionMap::partitionOf(7, 0b11));
  // The GIGA+ walk clears the most significant bit until present:
  // 5 = 101b is absent from {0,1,2}, drops the 4-bit, lands on 1.
  EXPECT_EQ(1u, PartitionMap::partitionOf(5, 0b111));
  // 7 = 111b drops to 3 (absent), then to 1.
  EXPECT_EQ(1u, PartitionMap::partitionOf(7, 0b111));
  EXPECT_EQ(2u, PartitionMap::partitionOf(6, 0b111));
}

TEST(Sharded, PhysicalPathsRoundTrip) {
  uint64_t Tok = fnv1a64("/some/dir");
  for (unsigned P : {0u, 1u, 63u}) {
    std::string Dir = PartitionMap::partitionDirName(Tok, P);
    PartitionMap::ParsedPath Out;
    ASSERT_TRUE(PartitionMap::parse(Dir, Out)) << Dir;
    EXPECT_EQ(Tok, Out.Token);
    EXPECT_EQ(P, Out.Partition);
    EXPECT_TRUE(Out.Leaf.empty());
    ASSERT_TRUE(PartitionMap::parse(Dir + "/leafname", Out));
    EXPECT_EQ(Tok, Out.Token);
    EXPECT_EQ(P, Out.Partition);
    EXPECT_EQ("leafname", Out.Leaf);
  }
  PartitionMap::ParsedPath Out;
  EXPECT_FALSE(PartitionMap::parse("/ordinary/path", Out));
  EXPECT_FALSE(PartitionMap::parse("/giga/nothex.0", Out));
  EXPECT_FALSE(PartitionMap::parse("/giga", Out));
}

TEST(Sharded, SplitChildAndCommitFollowGigaRules) {
  PartitionMap M;
  GigaDir &D = M.registerDir("/d");
  uint64_t E0 = M.epoch();
  EXPECT_EQ(fnv1a64("/d"), D.Token);
  EXPECT_EQ(0b1ull, D.Bitmap);

  // Partition 0 at depth 0 splits into 0 + 2^0 = 1.
  unsigned Child = PartitionMap::splitChild(D, 0, PartitionMap::MaxPartitions);
  ASSERT_EQ(1u, Child);
  M.commitSplit(D, 0, Child);
  EXPECT_EQ(0b11ull, D.Bitmap);
  EXPECT_EQ(1u, D.Depth[0]);
  EXPECT_EQ(1u, D.Depth[1]);
  EXPECT_GT(M.epoch(), E0);

  // Partition 1 at depth 1 splits into 1 + 2^1 = 3; a partition cap below
  // the child index refuses the split.
  EXPECT_EQ(3u, PartitionMap::splitChild(D, 1, PartitionMap::MaxPartitions));
  EXPECT_EQ(PartitionMap::MaxPartitions, PartitionMap::splitChild(D, 1, 2));

  // An entry leaves its depth-d partition iff hash bit d is set.
  EXPECT_TRUE(PartitionMap::movesOnSplit(0b1, 0));
  EXPECT_FALSE(PartitionMap::movesOnSplit(0b10, 0));
  EXPECT_TRUE(PartitionMap::movesOnSplit(0b10, 1));

  // Registration is idempotent; unregistering forgets the directory.
  GigaDir &Again = M.registerDir("/d");
  EXPECT_EQ(&D, &Again);
  EXPECT_EQ(0b11ull, Again.Bitmap);
  M.unregisterDir(D.Token);
  EXPECT_EQ(nullptr, M.dir(fnv1a64("/d")));
}

TEST(Sharded, PlacementIsDeterministicAndFansOut) {
  ShardPlacement RR{4, ShardPlacement::Policy::RoundRobin};
  ShardPlacement HS{4, ShardPlacement::Policy::HashSpread};
  for (const char *Path : {"/a", "/a/b", "/hot"}) {
    uint64_t Tok = fnv1a64(Path);
    EXPECT_EQ(RR.homeShard(Tok), RR.shardFor(Tok, 0));
    EXPECT_EQ(HS.homeShard(Tok), HS.shardFor(Tok, 0));
    for (unsigned P = 0; P < 8; ++P) {
      // Round-robin: consecutive partitions land on consecutive shards,
      // so one directory's first N partitions cover all N shards.
      EXPECT_EQ((RR.shardFor(Tok, 0) + P) % 4, RR.shardFor(Tok, P));
      EXPECT_LT(HS.shardFor(Tok, P), 4u);
      // Pure functions: both sides of the protocol recompute identically.
      EXPECT_EQ(RR.shardFor(Tok, P), RR.shardFor(Tok, P));
      EXPECT_EQ(HS.shardFor(Tok, P), HS.shardFor(Tok, P));
    }
  }
}

//===----------------------------------------------------------------------===//
// Namespace semantics through the sharded client
//===----------------------------------------------------------------------===//

TEST(Sharded, BasicNamespaceOperations) {
  Scheduler S;
  ShardedFs Fs(S);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);

  EXPECT_EQ(FsError::Ok, runSync(S, *Client, makeMkdir("/d")).Err);
  EXPECT_EQ(FsError::Exists, runSync(S, *Client, makeMkdir("/d")).Err);
  EXPECT_EQ(FsError::Ok, touch(S, *Client, "/d/f"));

  MetaReply St = runSync(S, *Client, makeStat("/d/f"));
  ASSERT_TRUE(St.ok());
  EXPECT_EQ(FileType::Regular, St.A.Type);
  St = runSync(S, *Client, makeStat("/d"));
  ASSERT_TRUE(St.ok());
  EXPECT_EQ(FileType::Directory, St.A.Type);

  MetaReply Dir = runSync(S, *Client, makeReaddir("/d"));
  ASSERT_TRUE(Dir.ok());
  ASSERT_EQ(3u, Dir.Entries.size()); // ".", "..", "f"
  EXPECT_EQ("f", Dir.Entries.back().Name);

  // Symlinks resolve through the partition translation too.
  EXPECT_EQ(FsError::Ok, runSync(S, *Client, makeSymlink("f", "/d/l")).Err);
  MetaRequest RlReq;
  RlReq.Op = MetaOp::Readlink;
  RlReq.Path = "/d/l";
  MetaReply Rl = runSync(S, *Client, RlReq);
  ASSERT_TRUE(Rl.ok());
  EXPECT_EQ("f", Rl.Text);

  // A populated directory refuses rmdir until emptied.
  EXPECT_EQ(FsError::NotEmpty, runSync(S, *Client, makeRmdir("/d")).Err);
  EXPECT_EQ(FsError::Ok, runSync(S, *Client, makeUnlink("/d/l")).Err);
  EXPECT_EQ(FsError::Ok, runSync(S, *Client, makeUnlink("/d/f")).Err);
  EXPECT_EQ(FsError::Ok, runSync(S, *Client, makeRmdir("/d")).Err);
  EXPECT_EQ(FsError::NoEnt, runSync(S, *Client, makeStat("/d")).Err);
}

TEST(Sharded, HotDirectorySplitsAndSpreads) {
  Scheduler S;
  ShardedOptions O;
  O.NumShards = 4;
  O.SplitThreshold = 4;
  ShardedFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<ShardedClient *>(Client.get());

  ASSERT_EQ(FsError::Ok, runSync(S, *Client, makeMkdir("/hot")).Err);
  constexpr unsigned N = 32;
  for (unsigned I = 0; I < N; ++I)
    ASSERT_EQ(FsError::Ok, touch(S, *Client, "/hot/f" + std::to_string(I)))
        << I;

  // 32 entries over a 4-entry threshold forced repeated splits, moving
  // entries between shards; the client followed the map via redirects.
  EXPECT_GT(Fs.splitCount(), 0u);
  EXPECT_GT(Fs.migratedEntries(), 0u);
  EXPECT_GT(C->staleMapRetries(), 0u);
  EXPECT_GT(Fs.staleReplies(), 0u);
  const GigaDir *D = Fs.partitionMap().dir(fnv1a64("/hot"));
  ASSERT_NE(nullptr, D);
  EXPECT_GT(std::popcount(D->Bitmap), 1);

  // The advisory per-partition counts sum to the real entry count.
  uint64_t Counted = 0;
  for (unsigned P = 0; P < PartitionMap::MaxPartitions; ++P)
    Counted += D->Count[P];
  EXPECT_EQ(uint64_t(N), Counted);

  // Nothing was lost or duplicated along the way: every file stats, and
  // the fan-out readdir returns each exactly once.
  for (unsigned I = 0; I < N; ++I)
    EXPECT_TRUE(runSync(S, *Client, makeStat("/hot/f" + std::to_string(I)))
                    .ok())
        << I;
  MetaReply Dir = runSync(S, *Client, makeReaddir("/hot"));
  ASSERT_TRUE(Dir.ok());
  std::vector<std::string> Names;
  for (const DirEntry &E : Dir.Entries)
    Names.push_back(E.Name);
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(N + 2, Names.size());
  EXPECT_EQ(Names.end(), std::adjacent_find(Names.begin(), Names.end()));

  // Every shard volume stayed consistent under the migrations.
  for (unsigned I = 0; I < Fs.numShards(); ++I)
    EXPECT_TRUE(Fs.shard(I)
                    .volume(ShardedFs::volumeName(I))
                    ->fsck()
                    .clean())
        << "shard " << I;
}

//===----------------------------------------------------------------------===//
// StaleMap redirects and the migrated duplicate-request cache
//===----------------------------------------------------------------------===//

TEST(Sharded, RedirectedRetransmitHitsMigratedDrcEntry) {
  // The end-to-end exactly-once chain across a split: client 1 creates a
  // directory entry and loses the reply; before its retransmit fires, a
  // split migrates the entry (and its cached reply) to another shard. The
  // retransmit carries the original Xid, is redirected by the stale map,
  // and must be answered from the *destination* shard's cache — Ok, not
  // the Exists a re-execution would see.
  Scheduler S;
  ShardedOptions O;
  O.NumShards = 2;
  O.SplitThreshold = 2;
  O.Client.Retry.Timeout = milliseconds(10);
  ShardedFs Fs(S, O);
  std::unique_ptr<ClientFs> C1 = Fs.makeClient(0);
  std::unique_ptr<ClientFs> C2 = Fs.makeClient(1);
  auto *R1 = static_cast<ShardedClient *>(C1.get());

  ASSERT_EQ(FsError::Ok, runSync(S, *C2, makeMkdir("/d")).Err);

  // A leaf whose hash has bit 0 set leaves partition 0 on the first
  // split; with round-robin placement its new partition 1 is on the
  // other shard.
  std::string Mover;
  for (unsigned I = 0;; ++I) {
    std::string Name = "m" + std::to_string(I);
    if (PartitionMap::movesOnSplit(PartitionMap::hashName(Name), 0)) {
      Mover = Name;
      break;
    }
  }
  uint64_t Tok = fnv1a64("/d");
  ASSERT_NE(Fs.placement().shardFor(Tok, 0), Fs.placement().shardFor(Tok, 1));
  unsigned DstShard = Fs.placement().shardFor(Tok, 1);

  // Client 1 creates the mover and loses the reply.
  FaultPolicy P;
  P.Windows = {{S.now(), S.now() + milliseconds(2), 1.0}};
  R1->replyLink().setFaultPolicy(P);
  MetaReply MoverReply;
  bool MoverDone = false;
  C1->submit(makeMkdir("/d/" + Mover), [&](MetaReply R) {
    MoverReply = std::move(R);
    MoverDone = true;
  });

  // Client 2 trips the 2-entry threshold at 3 ms — after the mover
  // executed, before client 1's 10 ms retransmit — splitting /d.
  unsigned FillerDone = 0;
  S.after(milliseconds(3), [&] {
    C2->submit(makeMkdir("/d/a0"), [&](MetaReply) { ++FillerDone; });
    C2->submit(makeMkdir("/d/a1"), [&](MetaReply) { ++FillerDone; });
  });
  S.run();

  ASSERT_TRUE(MoverDone);
  ASSERT_EQ(2u, FillerDone);
  EXPECT_EQ(FsError::Ok, MoverReply.Err) << "retransmit was double-applied";
  EXPECT_GT(Fs.splitCount(), 0u);
  EXPECT_GE(R1->staleMapRetries(), 1u);
  // The replay came from the destination shard's adopted entry.
  EXPECT_GE(Fs.shard(DstShard).drcHits(), 1u);

  // Exactly once: the entry exists, once, on the destination.
  MetaReply St = runSync(S, *C2, makeStat("/d/" + Mover));
  ASSERT_TRUE(St.ok());
  EXPECT_EQ(FileType::Directory, St.A.Type);
}

//===----------------------------------------------------------------------===//
// Rename semantics across partitions and shards
//===----------------------------------------------------------------------===//

TEST(Sharded, RenameAcrossShardsIsXDev) {
  Scheduler S;
  ShardedOptions O;
  O.NumShards = 2;
  O.SplitThreshold = 3;
  ShardedFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);

  // Directories cannot be renamed: their token (and every child's
  // physical placement) derives from the virtual path.
  ASSERT_EQ(FsError::Ok, runSync(S, *Client, makeMkdir("/dd")).Err);
  EXPECT_EQ(FsError::XDev, runSync(S, *Client, makeRename("/dd", "/ee")).Err);

  // Same directory, single partition: a plain rename.
  ASSERT_EQ(FsError::Ok, runSync(S, *Client, makeMkdir("/u")).Err);
  ASSERT_EQ(FsError::Ok, touch(S, *Client, "/u/x"));
  EXPECT_EQ(FsError::Ok, runSync(S, *Client, makeRename("/u/x", "/u/y")).Err);
  EXPECT_TRUE(runSync(S, *Client, makeStat("/u/y")).ok());
  EXPECT_EQ(FsError::NoEnt, runSync(S, *Client, makeStat("/u/x")).Err);

  // Split a directory, then rename between names whose partitions live on
  // different shards: the client reports XDev (the move would need a
  // cross-shard transaction the service does not implement).
  ASSERT_EQ(FsError::Ok, runSync(S, *Client, makeMkdir("/r")).Err);
  for (unsigned I = 0; I < 8; ++I)
    ASSERT_EQ(FsError::Ok, touch(S, *Client, "/r/g" + std::to_string(I)));
  const GigaDir *D = Fs.partitionMap().dir(fnv1a64("/r"));
  ASSERT_NE(nullptr, D);
  ASSERT_GT(std::popcount(D->Bitmap), 1);

  // Find an existing source and a fresh target name on different shards.
  std::string Src, Dst;
  for (unsigned I = 0; I < 8 && Src.empty(); ++I) {
    std::string Name = "g" + std::to_string(I);
    unsigned SrcShard = Fs.placement().shardFor(
        D->Token,
        PartitionMap::partitionOf(PartitionMap::hashName(Name), D->Bitmap));
    for (unsigned J = 0; J < 64; ++J) {
      std::string Cand = "h";
      Cand += std::to_string(J);
      unsigned DstShard = Fs.placement().shardFor(
          D->Token,
          PartitionMap::partitionOf(PartitionMap::hashName(Cand), D->Bitmap));
      if (DstShard != SrcShard) {
        Src = Name;
        Dst = Cand;
        break;
      }
    }
  }
  ASSERT_FALSE(Src.empty()) << "no cross-shard name pair found";
  std::string SrcPath = "/r/" + Src;
  std::string DstPath = "/r/" + Dst;
  EXPECT_EQ(FsError::XDev,
            runSync(S, *Client, makeRename(SrcPath, DstPath)).Err);
  // The failed rename moved nothing.
  EXPECT_TRUE(runSync(S, *Client, makeStat(SrcPath)).ok());
  EXPECT_EQ(FsError::NoEnt, runSync(S, *Client, makeStat(DstPath)).Err);
}

//===----------------------------------------------------------------------===//
// Tier-1 benchmark scenario: pinned and schedule-invariant
//===----------------------------------------------------------------------===//

TEST(Sharded, TierOneScenarioIsPinned) {
  // The sharded tier-1 scenario: 2 nodes x 2 processes, MakeFiles then
  // StatFiles at 300 files per process, splits enabled. The stonewall
  // averages are pinned as bit-exact values — any change to the engine,
  // the split cost accounting or the redirect protocol that moves them
  // must be deliberate.
  Scheduler S;
  Cluster C(S, 2, 4);
  ShardedOptions O;
  O.NumShards = 4;
  O.SplitThreshold = 64;
  ShardedFs Fs(S, O);
  C.mountEverywhere(Fs);
  BenchParams P;
  P.Operations = {"MakeFiles", "StatFiles"};
  P.ProblemSize = 300;
  P.TimeLimit = seconds(1.0);
  // Ppn + 1: rank 0 on the fullest node becomes the master (\S 3.3.4)
  // and is not placeable as a worker.
  MpiEnvironment Env = MpiEnvironment::uniform(2, 3);
  Master M(C, Env, "sharded", P);
  ResultSet Res = M.runCombination(2, 2);

  ASSERT_EQ(2u, Res.Subtasks.size());
  for (const SubtaskResult &Sub : Res.Subtasks)
    for (const ProcessTrace &Proc : Sub.Processes)
      EXPECT_EQ(0u, Proc.FailedRequests);
  // 300 files per process overflow the 64-entry threshold: the run splits.
  EXPECT_GT(Fs.splitCount(), 0u);
  // ops/s, pinned here as bit-exact values.
  EXPECT_DOUBLE_EQ(5854.545454545454, stonewallAverage(Res.Subtasks[0]));
  EXPECT_DOUBLE_EQ(12000.0, stonewallAverage(Res.Subtasks[1]));
}

TEST(Sharded, BenchmarkIsInvariantUnderPermutedSchedules) {
  // The same style of scenario as the pinned one, with a low threshold so
  // splits, migrations and redirects all happen mid-benchmark. Permuting
  // same-timestamp tie order must not change the canonical result: split
  // costs are a function of the threshold (not the tie-dependent moved
  // set), placement and hashing are pure, and migration order is sorted.
  ScheduleScenario Sc;
  Sc.Name = "sharded-makefiles-split";
  Sc.Run = [](Scheduler &S) {
    ShardedOptions O;
    O.NumShards = 4;
    O.SplitThreshold = 8;
    auto Fs = std::make_unique<ShardedFs>(S, O);
    Cluster C(S, 2, 4);
    C.mountEverywhere(*Fs);
    BenchParams P;
    P.Operations = {"MakeFiles", "StatFiles", "DeleteFiles"};
    P.ProblemSize = 40;
    P.TimeLimit = seconds(0.3);
    MpiEnvironment Env = MpiEnvironment::uniform(2, 3);
    Master M(C, Env, "sharded", P);
    return canonicalResultText(M.runCombination(2, 2));
  };
  ScheduleVerifyResult R = verifySchedules(Sc);
  EXPECT_TRUE(R.IdentityIdentical) << R.Report;
  EXPECT_TRUE(R.Deterministic) << R.Report;
  EXPECT_EQ(8u, R.SchedulesRun);
}

} // namespace
