//===- tests/SimTest.cpp - Unit tests for src/sim --------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/InplaceFunction.h"
#include "sim/Mutex.h"
#include "sim/Network.h"
#include "sim/Resource.h"
#include "sim/Scheduler.h"
#include "sim/SharedProcessor.h"
#include "sim/Time.h"
#include <algorithm>
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

using namespace dmb;

namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(1000, microseconds(1));
  EXPECT_EQ(1000000, milliseconds(1));
  EXPECT_EQ(1000000000, seconds(1.0));
  EXPECT_DOUBLE_EQ(0.5, toSeconds(milliseconds(500)));
  EXPECT_DOUBLE_EQ(2.5, toMilliseconds(microseconds(2500)));
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler S;
  std::vector<int> Order;
  S.at(milliseconds(30), [&] { Order.push_back(3); });
  S.at(milliseconds(10), [&] { Order.push_back(1); });
  S.at(milliseconds(20), [&] { Order.push_back(2); });
  S.run();
  EXPECT_EQ((std::vector<int>{1, 2, 3}), Order);
  EXPECT_EQ(milliseconds(30), S.now());
}

TEST(Scheduler, TiesFireInInsertionOrder) {
  Scheduler S;
  std::vector<int> Order;
  for (int I = 0; I < 10; ++I)
    S.at(milliseconds(5), [&, I] { Order.push_back(I); });
  S.run();
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(I, Order[I]);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler S;
  int Fired = 0;
  S.after(milliseconds(1), [&] {
    ++Fired;
    S.after(milliseconds(1), [&] { ++Fired; });
  });
  S.run();
  EXPECT_EQ(2, Fired);
  EXPECT_EQ(milliseconds(2), S.now());
}

TEST(Scheduler, RunUntilStopsAndAdvancesClock) {
  Scheduler S;
  int Fired = 0;
  S.at(milliseconds(10), [&] { ++Fired; });
  S.at(milliseconds(30), [&] { ++Fired; });
  S.runUntil(milliseconds(20));
  EXPECT_EQ(1, Fired);
  EXPECT_EQ(milliseconds(20), S.now());
  EXPECT_EQ(1u, S.pendingEvents());
  S.run();
  EXPECT_EQ(2, Fired);
}

TEST(Resource, SingleServerSerializes) {
  Scheduler S;
  Resource R(S, "disk", 1);
  std::vector<SimTime> Completions;
  for (int I = 0; I < 3; ++I)
    R.request(milliseconds(10), [&] { Completions.push_back(S.now()); });
  S.run();
  ASSERT_EQ(3u, Completions.size());
  EXPECT_EQ(milliseconds(10), Completions[0]);
  EXPECT_EQ(milliseconds(20), Completions[1]);
  EXPECT_EQ(milliseconds(30), Completions[2]);
  EXPECT_EQ(3u, R.completedRequests());
}

TEST(Resource, MultiServerRunsInParallel) {
  Scheduler S;
  Resource R(S, "cpu", 2);
  std::vector<SimTime> Completions;
  for (int I = 0; I < 4; ++I)
    R.request(milliseconds(10), [&] { Completions.push_back(S.now()); });
  S.run();
  ASSERT_EQ(4u, Completions.size());
  EXPECT_EQ(milliseconds(10), Completions[0]);
  EXPECT_EQ(milliseconds(10), Completions[1]);
  EXPECT_EQ(milliseconds(20), Completions[2]);
  EXPECT_EQ(milliseconds(20), Completions[3]);
}

TEST(Resource, SlowdownStretchesService) {
  Scheduler S;
  Resource R(S, "disk", 1);
  R.setSlowdown(3.0);
  SimTime Done = 0;
  R.request(milliseconds(10), [&] { Done = S.now(); });
  S.run();
  EXPECT_EQ(milliseconds(30), Done);
}

TEST(Resource, QueueLengthObservable) {
  Scheduler S;
  Resource R(S, "disk", 1);
  for (int I = 0; I < 5; ++I)
    R.request(milliseconds(10), [] {});
  EXPECT_EQ(1u, R.busyServers());
  EXPECT_EQ(4u, R.queueLength());
  S.run();
  EXPECT_EQ(0u, R.busyServers());
  EXPECT_EQ(0u, R.queueLength());
}

TEST(Resource, BusyTimeAccounting) {
  Scheduler S;
  Resource R(S, "disk", 2);
  for (int I = 0; I < 3; ++I)
    R.request(milliseconds(5), [] {});
  S.run();
  EXPECT_EQ(milliseconds(15), R.totalBusyTime());
}

TEST(SharedProcessor, SingleTaskRunsAtFullCoreSpeed) {
  Scheduler S;
  SharedProcessor Cpu(S, 4);
  SimTime Done = 0;
  Cpu.submit(seconds(1.0), [&] { Done = S.now(); });
  S.run();
  // One task on a 4-core machine still runs at 1-core speed.
  EXPECT_NEAR(1.0, toSeconds(Done), 1e-6);
}

TEST(SharedProcessor, TwoTasksOnTwoCoresDontInterfere) {
  Scheduler S;
  SharedProcessor Cpu(S, 2);
  std::vector<SimTime> Done;
  Cpu.submit(seconds(1.0), [&] { Done.push_back(S.now()); });
  Cpu.submit(seconds(1.0), [&] { Done.push_back(S.now()); });
  S.run();
  ASSERT_EQ(2u, Done.size());
  EXPECT_NEAR(1.0, toSeconds(Done[0]), 1e-6);
  EXPECT_NEAR(1.0, toSeconds(Done[1]), 1e-6);
}

TEST(SharedProcessor, OvercommitSharesFairly) {
  Scheduler S;
  SharedProcessor Cpu(S, 1);
  std::vector<SimTime> Done;
  Cpu.submit(seconds(1.0), [&] { Done.push_back(S.now()); });
  Cpu.submit(seconds(1.0), [&] { Done.push_back(S.now()); });
  S.run();
  // Two equal tasks sharing one core both finish at t=2s.
  ASSERT_EQ(2u, Done.size());
  EXPECT_NEAR(2.0, toSeconds(Done[0]), 1e-6);
  EXPECT_NEAR(2.0, toSeconds(Done[1]), 1e-6);
}

TEST(SharedProcessor, WeightsBiasShare) {
  Scheduler S;
  SharedProcessor Cpu(S, 1);
  SimTime HeavyDone = 0, LightDone = 0;
  // Weight 3 vs 1: heavy gets 75% of the core.
  Cpu.submit(seconds(0.75), 3.0, [&] { HeavyDone = S.now(); });
  Cpu.submit(seconds(0.75), 1.0, [&] { LightDone = S.now(); });
  S.run();
  // Heavy finishes at t=1s (0.75 work / 0.75 rate); then light has
  // 0.75 - 0.25 = 0.5 remaining and runs alone: done at 1.5s.
  EXPECT_NEAR(1.0, toSeconds(HeavyDone), 1e-6);
  EXPECT_NEAR(1.5, toSeconds(LightDone), 1e-6);
}

TEST(SharedProcessor, LateArrivalSlowsExisting) {
  Scheduler S;
  SharedProcessor Cpu(S, 1);
  SimTime FirstDone = 0;
  Cpu.submit(seconds(1.0), [&] { FirstDone = S.now(); });
  S.at(seconds(0.5), [&] { Cpu.submit(seconds(1.0), [] {}); });
  S.run();
  // First task: 0.5s alone + 0.5s remaining at half speed = 1.5s total.
  EXPECT_NEAR(1.5, toSeconds(FirstDone), 1e-6);
}

TEST(SharedProcessor, ZeroWorkCompletesImmediately) {
  Scheduler S;
  SharedProcessor Cpu(S, 1);
  bool Fired = false;
  Cpu.submit(0, [&] { Fired = true; });
  S.run();
  EXPECT_TRUE(Fired);
  EXPECT_EQ(0, S.now());
}

TEST(SharedProcessor, ManyTasksAllComplete) {
  Scheduler S;
  SharedProcessor Cpu(S, 8);
  int Done = 0;
  for (int I = 0; I < 100; ++I)
    Cpu.submit(milliseconds(10 + I), [&] { ++Done; });
  S.run();
  EXPECT_EQ(100, Done);
  EXPECT_EQ(100u, Cpu.completedTasks());
}

TEST(Mutex, ImmediateAcquisitionWhenFree) {
  Scheduler S;
  SimMutex M(S);
  bool Held = false;
  M.lock([&] { Held = true; });
  EXPECT_TRUE(M.isLocked());
  S.run();
  EXPECT_TRUE(Held);
  M.unlock();
  EXPECT_FALSE(M.isLocked());
}

TEST(Mutex, FifoWaiters) {
  Scheduler S;
  SimMutex M(S);
  std::vector<int> Order;
  M.lock([&] {
    Order.push_back(0);
    // Hold for 10ms, then release.
    S.after(milliseconds(10), [&] { M.unlock(); });
  });
  for (int I = 1; I <= 3; ++I)
    M.lock([&, I] {
      Order.push_back(I);
      M.unlock();
    });
  EXPECT_EQ(3u, M.waiterCount());
  S.run();
  EXPECT_EQ((std::vector<int>{0, 1, 2, 3}), Order);
  EXPECT_FALSE(M.isLocked());
}

TEST(Mutex, SerializesCriticalSections) {
  Scheduler S;
  SimMutex M(S);
  int Inside = 0, MaxInside = 0, Completed = 0;
  for (int I = 0; I < 5; ++I)
    M.lock([&] {
      ++Inside;
      MaxInside = std::max(MaxInside, Inside);
      S.after(milliseconds(5), [&] {
        --Inside;
        ++Completed;
        M.unlock();
      });
    });
  S.run();
  EXPECT_EQ(5, Completed);
  EXPECT_EQ(1, MaxInside);
  EXPECT_EQ(milliseconds(25), S.now());
}

TEST(Network, LatencyOnly) {
  Scheduler S;
  NetworkLink Link(S, microseconds(200));
  SimTime Delivered = 0;
  Link.send(0, [&] { Delivered = S.now(); });
  S.run();
  EXPECT_EQ(microseconds(200), Delivered);
}

TEST(Scheduler, AfterWithNegativeDelayClampsToNow) {
  Scheduler S;
  S.after(milliseconds(10), [] {});
  S.run();
  SimTime Fired = -1;
  S.after(milliseconds(-5), [&] { Fired = S.now(); });
  S.run();
  EXPECT_EQ(milliseconds(10), Fired);
}

TEST(SchedulerDeathTest, SchedulingIntoThePastAborts) {
  Scheduler S;
  S.after(milliseconds(10), [] {});
  S.run();
  // The failure report carries the simulated clock and event ordinal so
  // the violation can be replayed.
  EXPECT_DEATH(S.at(milliseconds(5), [] {}),
               "cannot schedule into the past.*sim time");
}

TEST(Scheduler, RunRecordsCleanDiagnostics) {
  Scheduler S;
  S.after(milliseconds(1), [] {});
  S.run();
  EXPECT_TRUE(S.lastDiagnostics().clean());
  EXPECT_NE(std::string::npos,
            S.lastDiagnostics().render().find("no issues"));
  EXPECT_EQ(1u, S.lastDiagnostics().EventsExecuted);
}

TEST(Scheduler, RunUntilRecordsDiagnosticsOnDrain) {
  // runUntil() that drains the queue reaches quiescence exactly as run()
  // does, so lastDiagnostics() must reflect this run — not a stale report
  // from an earlier one.
  Scheduler S;
  S.after(milliseconds(1), [] {});
  S.run();
  EXPECT_EQ(1u, S.lastDiagnostics().EventsExecuted);
  S.after(milliseconds(1), [] {});
  S.after(milliseconds(2), [] {});
  S.runUntil(milliseconds(10)); // Drains both events.
  EXPECT_TRUE(S.lastDiagnostics().clean());
  EXPECT_EQ(3u, S.lastDiagnostics().EventsExecuted);
}

TEST(Scheduler, RunUntilKeepsDiagnosticsWhileEventsRemain) {
  Scheduler S;
  S.after(milliseconds(1), [] {});
  S.run();
  S.after(milliseconds(20), [] {});
  S.runUntil(milliseconds(10)); // Deadline hit with one event pending.
  // Not quiescent: the previous complete run's report stays in place.
  EXPECT_EQ(1u, S.lastDiagnostics().EventsExecuted);
  S.run();
  EXPECT_EQ(2u, S.lastDiagnostics().EventsExecuted);
}

TEST(SchedulerDeathTest, RunUntilPinsAssertContextAcrossSchedulers) {
  // Two schedulers: after B merely advances its clock with runUntil (no
  // event fires), a failed assert must still report *B*'s clock, not
  // A's — the regression was runUntil leaving ActiveScheduler stale.
  Scheduler A, B;
  A.after(milliseconds(1), [] {});
  A.run(); // A owns the assert context now.
  B.after(seconds(2.0), [] {});
  B.runUntil(seconds(1.0)); // No event fires; B must take over.
  EXPECT_DEATH(B.at(milliseconds(5), [] {}),
               "sim time 1\\.000000000s");
}

TEST(Scheduler, QuiescenceReportsHeldMutexAndStrandedWaiters) {
  Scheduler S;
  SimMutex M(S, "cxfs-token");
  M.lock([] {});
  M.lock([] {}); // Second acquirer queues behind the (never-released) hold.
  S.run();
  const SimDiagnostics &D = S.lastDiagnostics();
  ASSERT_FALSE(D.clean());
  EXPECT_EQ(2u, D.Issues.size());
  std::string Report = D.render();
  EXPECT_NE(std::string::npos, Report.find("cxfs-token"));
  EXPECT_NE(std::string::npos, Report.find("still locked"));
  EXPECT_NE(std::string::npos, Report.find("stranded waiter"));
  // Drain properly so the destruction checks pass.
  M.unlock();
  S.run();
  M.unlock();
  EXPECT_TRUE(S.checkQuiescent().clean());
}

TEST(Resource, QuiescenceReportsInFlightWork) {
  Scheduler S;
  Resource R(S, "disk", 1);
  for (int I = 0; I < 3; ++I)
    R.request(milliseconds(10), [] {});
  // Truncate the run mid-service: one request on the server, two queued.
  S.runUntil(milliseconds(5));
  SimDiagnostics D = S.checkQuiescent();
  ASSERT_EQ(2u, D.Issues.size());
  std::string Report = D.render();
  EXPECT_NE(std::string::npos, Report.find("disk"));
  EXPECT_NE(std::string::npos, Report.find("busy"));
  EXPECT_EQ(1u, D.PendingEvents);
  S.run();
  EXPECT_TRUE(S.lastDiagnostics().clean());
}

TEST(SharedProcessor, QuiescenceReportsActiveTasks) {
  Scheduler S;
  SharedProcessor Cpu(S, 1);
  Cpu.submit(seconds(1.0), [] {});
  S.runUntil(milliseconds(100));
  SimDiagnostics D = S.checkQuiescent();
  ASSERT_FALSE(D.clean());
  EXPECT_NE(std::string::npos, D.render().find("task(s) still active"));
  S.run();
  EXPECT_TRUE(S.lastDiagnostics().clean());
}

TEST(MutexDeathTest, DoubleUnlockAborts) {
  Scheduler S;
  SimMutex M(S);
  M.lock([] {});
  S.run();
  M.unlock();
  EXPECT_DEATH(M.unlock(), "double unlock");
}

TEST(MutexDeathTest, DestroyWhileLockedAborts) {
  EXPECT_DEATH(
      {
        Scheduler S;
        SimMutex M(S, "leaked");
        M.lock([] {});
        S.run();
        // M goes out of scope still locked.
      },
      "destroyed while still locked");
}

TEST(InplaceFunction, SmallCapturesStayInline) {
  using Fn = InplaceFunction<void()>;
  // The typical event capture — an object pointer, an id, a value — fits
  // the 64-byte buffer and must not allocate.
  struct Small {
    void *Obj;
    uint64_t Id;
    int64_t Value;
    void operator()() {}
  };
  static_assert(Fn::fitsInline<Small>());
  struct Big {
    char Payload[128];
    void operator()() {}
  };
  static_assert(!Fn::fitsInline<Big>());

  int Calls = 0;
  Fn F([&Calls] { ++Calls; });
  ASSERT_TRUE(static_cast<bool>(F));
  F();
  F();
  EXPECT_EQ(2, Calls);
}

TEST(InplaceFunction, HeapFallbackStillWorks) {
  // Oversized closures transparently box on the heap, same semantics.
  struct Big {
    char Pad[100] = {};
    int *Out;
    void operator()() { *Out = 7; }
  };
  static_assert(!InplaceFunction<void()>::fitsInline<Big>());
  int Result = 0;
  InplaceFunction<void()> F(Big{{}, &Result});
  F();
  EXPECT_EQ(7, Result);
}

TEST(InplaceFunction, MoveOnlyCapturesAreAccepted) {
  // std::function rejects move-only captures; the event loop needs them.
  auto P = std::make_unique<int>(42);
  InplaceFunction<int()> F([P = std::move(P)] { return *P; });
  EXPECT_EQ(42, F());
}

TEST(InplaceFunction, MoveRelocatesAndEmptiesSource) {
  int Calls = 0;
  InplaceFunction<void()> A([&Calls] { ++Calls; });
  InplaceFunction<void()> B(std::move(A));
  EXPECT_FALSE(static_cast<bool>(A));
  EXPECT_TRUE(static_cast<bool>(B));
  B();
  EXPECT_EQ(1, Calls);

  InplaceFunction<void()> C;
  C = std::move(B);
  EXPECT_FALSE(static_cast<bool>(B));
  C();
  EXPECT_EQ(2, Calls);
}

TEST(InplaceFunction, EmplaceReplacesTheHeldCallable) {
  // Destruction of the old callable must run before the new one lands —
  // the slot-recycling path of the scheduler's event pool.
  struct Probe {
    int *Dtors;
    Probe(int *D) : Dtors(D) {}
    Probe(Probe &&O) noexcept : Dtors(O.Dtors) { O.Dtors = nullptr; }
    ~Probe() {
      if (Dtors)
        ++*Dtors;
    }
    void operator()() {}
  };
  int Dtors = 0;
  InplaceFunction<void()> F;
  F.emplace(Probe(&Dtors));
  EXPECT_EQ(0, Dtors);
  int Ran = 0;
  F.emplace([&Ran] { ++Ran; });
  EXPECT_EQ(1, Dtors); // Old callable destroyed on replacement.
  F();
  EXPECT_EQ(1, Ran);
}

TEST(Scheduler, EventPoolRecyclesSlots) {
  // A long sequential chain reuses a handful of pool slots; the pool must
  // not grow with the total number of events ever scheduled.
  Scheduler S;
  int Fired = 0;
  std::function<void()> Chain = [&] {
    if (++Fired < 10000)
      S.after(microseconds(1), [&] { Chain(); });
  };
  S.after(0, [&] { Chain(); });
  S.run();
  EXPECT_EQ(10000, Fired);
  EXPECT_LE(S.eventPoolCapacity(), 16u);
}

TEST(Network, SerializationAddsToLatency) {
  Scheduler S;
  // 1 MB at 125 MB/s = 8 ms of serialization.
  NetworkLink Link(S, milliseconds(1), 125e6);
  SimTime Delivered = 0;
  Link.send(1000000, [&] { Delivered = S.now(); });
  S.run();
  EXPECT_EQ(milliseconds(9), Delivered);
  EXPECT_EQ(1u, Link.messagesSent());
  EXPECT_EQ(1000000u, Link.bytesSent());
}

} // namespace
