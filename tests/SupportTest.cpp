//===- tests/SupportTest.cpp - Unit tests for src/support -----------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Format.h"
#include "support/Interner.h"
#include "support/Random.h"
#include "support/Result.h"
#include "support/TextTable.h"
#include <gtest/gtest.h>
#include <set>

using namespace dmb;

namespace {

TEST(Error, NamesAreCanonical) {
  EXPECT_STREQ("OK", fsErrorName(FsError::Ok));
  EXPECT_STREQ("EEXIST", fsErrorName(FsError::Exists));
  EXPECT_STREQ("ENOENT", fsErrorName(FsError::NoEnt));
  EXPECT_STREQ("EXDEV", fsErrorName(FsError::XDev));
  EXPECT_STREQ("ENOTEMPTY", fsErrorName(FsError::NotEmpty));
  EXPECT_STREQ("ESTALE", fsErrorName(FsError::Stale));
}

TEST(Error, ExhaustiveNameRoundTrip) {
  // Runtime twin of dmeta-lint's error-table sync check: every code has a
  // distinct canonical name that parses back to the same code.
  std::set<std::string> Seen;
  for (unsigned I = 0; I < NumFsErrors; ++I) {
    FsError E = static_cast<FsError>(I);
    const char *Name = fsErrorName(E);
    EXPECT_STRNE("UNKNOWN", Name) << "code " << I;
    EXPECT_TRUE(Seen.insert(Name).second) << "duplicate name " << Name;
    FsError Back = FsError::Ok;
    ASSERT_TRUE(fsErrorFromName(Name, Back)) << Name;
    EXPECT_EQ(E, Back) << Name;
  }
  EXPECT_EQ(NumFsErrors, Seen.size());
  FsError Out = FsError::Ok;
  EXPECT_FALSE(fsErrorFromName("ENOSYS", Out));
  EXPECT_FALSE(fsErrorFromName("", Out));
  EXPECT_FALSE(fsErrorFromName("eexist", Out));
}

TEST(Error, FromNameRejectsUnknownNames) {
  // A failed lookup must reject near-misses exactly and leave the
  // out-parameter untouched, so callers can trust it after a false return.
  FsError Out = FsError::Stale;
  EXPECT_FALSE(fsErrorFromName("UNKNOWN", Out)); // fallback render, not a name
  EXPECT_FALSE(fsErrorFromName("ENOEN", Out));   // prefix of ENOENT
  EXPECT_FALSE(fsErrorFromName("ENOENTX", Out)); // trailing garbage
  EXPECT_FALSE(fsErrorFromName("ENOENT ", Out)); // trailing whitespace
  EXPECT_FALSE(fsErrorFromName(" ENOENT", Out)); // leading whitespace
  EXPECT_FALSE(fsErrorFromName("Ok", Out));      // enum spelling, not the name
  EXPECT_EQ(FsError::Stale, Out);
}

TEST(Result, HoldsValue) {
  Result<int> R = 42;
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(42, *R);
  EXPECT_EQ(FsError::Ok, R.error());
  EXPECT_EQ(42, R.valueOr(7));
}

TEST(Result, HoldsError) {
  Result<int> R = FsError::NoEnt;
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(FsError::NoEnt, R.error());
  EXPECT_EQ(7, R.valueOr(7));
}

TEST(Result, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> R = std::make_unique<int>(5);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(5, **R);
}

TEST(Format, Printf) {
  EXPECT_EQ("x=3 y=abc", format("x=%d y=%s", 3, "abc"));
  EXPECT_EQ("", format("%s", ""));
  EXPECT_EQ("3.14", format("%.2f", 3.14159));
}

TEST(Format, JoinSplit) {
  std::vector<std::string> Parts = {"a", "b", "c"};
  EXPECT_EQ("a/b/c", join(Parts, "/"));
  EXPECT_EQ(Parts, split("a/b/c", '/'));
  std::vector<std::string> WithEmpty = {"", "x", ""};
  EXPECT_EQ(WithEmpty, split("/x/", '/'));
  EXPECT_EQ(std::vector<std::string>{""}, split("", '/'));
}

TEST(Format, StartsWith) {
  EXPECT_TRUE(startsWith("/mnt/nfs/test", "/mnt/nfs"));
  EXPECT_FALSE(startsWith("/mnt", "/mnt/nfs"));
}

TEST(Random, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, SeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(Random, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Random, ExponentialMean) {
  Rng R(11);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.exponential(3.0);
  EXPECT_NEAR(3.0, Sum / N, 0.1);
}

TEST(Random, NormalMoments) {
  Rng R(13);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.normal(10.0, 2.0);
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(10.0, Mean, 0.1);
  EXPECT_NEAR(4.0, Var, 0.3);
}

TEST(Random, BelowStaysInRange) {
  Rng R(17);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.below(5);
    EXPECT_LT(V, 5u);
    Seen.insert(V);
  }
  EXPECT_EQ(5u, Seen.size());
}

TEST(Interner, IdsAreDenseAndStable) {
  Interner I;
  EXPECT_EQ(0u, I.intern("volume"));
  EXPECT_EQ(1u, I.intern("scratch"));
  // Re-interning returns the existing id.
  EXPECT_EQ(0u, I.intern("volume"));
  EXPECT_EQ(2u, I.size());
  EXPECT_EQ("volume", I.name(0));
  EXPECT_EQ("scratch", I.name(1));
}

TEST(Interner, FindDoesNotIntern) {
  Interner I;
  EXPECT_EQ(Interner::None, I.find("volume"));
  EXPECT_EQ(0u, I.size());
  I.intern("volume");
  EXPECT_EQ(0u, I.find("volume"));
  EXPECT_EQ(Interner::None, I.find("volum"));
}

TEST(Interner, NamesStayValidAcrossGrowth) {
  // The id -> name vector points into the map's nodes; references must
  // survive arbitrarily many later interns (rehashes move buckets, not
  // nodes).
  Interner I;
  I.intern("first");
  const std::string *First = &I.name(0);
  for (int K = 0; K < 1000; ++K)
    I.intern("vol" + std::to_string(K));
  EXPECT_EQ(First, &I.name(0));
  EXPECT_EQ("first", I.name(0));
  EXPECT_EQ(1001u, I.size());
  EXPECT_EQ(500u, I.find("vol499"));
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "ops/s"});
  T.addRow({"NFS", "5000"});
  T.addRow({"Lustre", "12000"});
  std::string Out = T.render();
  EXPECT_NE(std::string::npos, Out.find("name"));
  EXPECT_NE(std::string::npos, Out.find("Lustre"));
  EXPECT_NE(std::string::npos, Out.find("12000"));
  EXPECT_EQ(2u, T.numRows());
  // Numeric cells are right-aligned: "5000" is preceded by a space pad.
  EXPECT_NE(std::string::npos, Out.find(" 5000"));
}

} // namespace
