//===- tests/TokenizerTest.cpp - Unit tests for analyze/Tokenizer ---------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The tokenizer underpins both check tools; a token split in the wrong
// place silently changes what every rule sees. These tests pin the lexing
// of the constructs that historically broke: C++14 digit separators,
// user-defined-literal suffixes, and raw strings with encoding prefixes
// or delimiters containing quotes.
//
//===----------------------------------------------------------------------===//

#include "analyze/Tokenizer.h"
#include <gtest/gtest.h>

using namespace dmb::analyze;

namespace {

/// Renders a token stream as "Kind|text" words for compact comparison.
std::string spell(const std::string &Src) {
  std::string Out;
  for (const Token &T : tokenize(Src).Tokens) {
    if (!Out.empty())
      Out += ' ';
    switch (T.Kind) {
    case TokKind::Ident:
      Out += "i:";
      break;
    case TokKind::Number:
      Out += "n:";
      break;
    case TokKind::String:
      Out += "s:";
      break;
    case TokKind::CharLit:
      Out += "c:";
      break;
    case TokKind::Punct:
      Out += "p:";
      break;
    case TokKind::Include:
      Out += "inc:";
      break;
    case TokKind::Directive:
      Out += "dir:";
      break;
    }
    Out += T.Text;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Digit separators
//===----------------------------------------------------------------------===//

TEST(Tokenizer, DigitSeparatorsStayOneNumberToken) {
  EXPECT_EQ("i:int i:x p:= n:1'000'000 p:;", spell("int x = 1'000'000;"));
  EXPECT_EQ("n:0b1010'0011", spell("0b1010'0011"));
  EXPECT_EQ("n:0xFF'AA'00", spell("0xFF'AA'00"));
}

TEST(Tokenizer, DigitSeparatorWithSuffixAndNeighbours) {
  // The separator must not open a char literal, even with a literal
  // suffix attached or a real char literal adjacent in the argument list.
  EXPECT_EQ("n:1'000ull", spell("1'000ull"));
  EXPECT_EQ("i:f p:( n:1'000 p:, c: p:)", spell("f(1'000, 'x')"));
  EXPECT_EQ("i:case n:0x1'000 p::", spell("case 0x1'000:"));
}

TEST(Tokenizer, DigitSeparatorSurvivesInSanitizedView) {
  std::vector<std::string> San = sanitizeSource("int x = 1'000'000;\n");
  ASSERT_EQ(1u, San.size());
  EXPECT_EQ("int x = 1'000'000;", San[0]);
}

//===----------------------------------------------------------------------===//
// User-defined literals
//===----------------------------------------------------------------------===//

TEST(Tokenizer, NumericUdlIsPartOfTheNumber) {
  EXPECT_EQ("i:auto i:d p:= n:10ms p:;", spell("auto d = 10ms;"));
  EXPECT_EQ("n:1.5_km", spell("1.5_km"));
}

TEST(Tokenizer, StringUdlSuffixDoesNotBecomeAnIdentifier) {
  // "abc"sv used to lex as a String followed by a spurious Ident "sv",
  // which variable-tracking rules could then treat as a name.
  EXPECT_EQ("i:auto i:s p:= s:abc p:;", spell("auto s = \"abc\"sv;"));
  EXPECT_EQ("s:abc", spell("\"abc\"_w"));
}

TEST(Tokenizer, CharUdlSuffixDoesNotBecomeAnIdentifier) {
  EXPECT_EQ("c:", spell("'a'_tag"));
}

TEST(Tokenizer, CharLiteralKeepsItsQuotesInTheSanitizedView) {
  // Dropping the quotes entirely glued the neighbours together: f('x')
  // sanitized to f() and substring rules saw calls that are not there.
  std::vector<std::string> San = sanitizeSource("f('x');\n");
  ASSERT_EQ(1u, San.size());
  EXPECT_EQ("f('');", San[0]);
}

//===----------------------------------------------------------------------===//
// Raw strings
//===----------------------------------------------------------------------===//

TEST(Tokenizer, RawStringBasicAndCustomDelimiter) {
  EXPECT_EQ("s:hi", spell("R\"(hi)\""));
  EXPECT_EQ("s:a)\" b", spell("R\"xy(a)\" b)xy\""));
}

TEST(Tokenizer, RawStringDelimiterContainingAQuote) {
  // d-chars exclude parens, backslash and whitespace — not quotes. The
  // terminator must be matched as the full )delim" sequence.
  EXPECT_EQ("s:hi", spell("R\"q\"(hi)q\"\""));
  // Content containing a prefix of the terminator must not end the
  // literal early.
  EXPECT_EQ("s:a)q\" b", spell("R\"q\"(a)q\" b)q\"\""));
}

TEST(Tokenizer, EncodingPrefixedRawStringsLexAsOneLiteral) {
  // LR"(hi)" used to lex as Ident "LR" plus a mis-parsed plain string
  // whose contents leaked parentheses into the token stream.
  EXPECT_EQ("s:hi", spell("LR\"(hi)\""));
  EXPECT_EQ("s:hi", spell("u8R\"(hi)\""));
  EXPECT_EQ("s:hi", spell("uR\"(hi)\""));
  EXPECT_EQ("s:hi", spell("UR\"(hi)\""));
  // Braces in mis-lexed raw contents used to corrupt depth tracking;
  // pin that the brace depth after the literal is unchanged.
  TokenizedSource TS = tokenize("void f() { auto r = LR\"({{{)\"; g(); }");
  ASSERT_FALSE(TS.Tokens.empty());
  EXPECT_EQ(0, TS.Tokens.back().BraceDepth);
}

TEST(Tokenizer, RawStringWithUdlSuffix) {
  EXPECT_EQ("s:hi", spell("R\"(hi)\"_w"));
}

TEST(Tokenizer, PrefixedPlainLiteralsStillLex) {
  EXPECT_EQ("s:abc", spell("L\"abc\""));
  EXPECT_EQ("s:abc", spell("u8\"abc\""));
  EXPECT_EQ("c:", spell("L'a'"));
  // A lone u/L identifier is not a literal prefix.
  EXPECT_EQ("i:int i:u p:= n:1 p:;", spell("int u = 1;"));
  EXPECT_EQ("i:int i:L p:;", spell("int L;"));
}

TEST(Tokenizer, MultiLineRawStringKeepsLineNumbers) {
  TokenizedSource TS = tokenize("auto r = R\"(a\nb)\";\nint x;\n");
  ASSERT_GE(TS.Tokens.size(), 4u);
  // The token after the raw string is on line 2 (the literal spans 1-2).
  const Token &X = TS.Tokens[TS.Tokens.size() - 3];
  EXPECT_EQ("int", X.Text);
  EXPECT_EQ(3, X.Line);
  ASSERT_EQ(3u, TS.SanitizedLines.size());
}

} // namespace
