//===- tests/TraceTest.cpp - Operation trace layer tests ------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operation trace and server-metrics layer: sink semantics, trace-id
/// propagation through the scheduler and the queueing primitives, span
/// causality on a live NFS run, the no-perturbation guarantee (tracing
/// changes no measured number), and the span/percentile analysis on top.
///
//===----------------------------------------------------------------------===//

#include "analysis/TraceAnalysis.h"
#include "core/ResultsIO.h"
#include "dmetabench/DMetabench.h"
#include "sim/Mutex.h"
#include <gtest/gtest.h>

using namespace dmb;

namespace {

//===----------------------------------------------------------------------===//
// OpTraceSink semantics
//===----------------------------------------------------------------------===//

TEST(TraceSink, BeginStampFinishRoundTrip) {
  OpTraceSink Sink;
  uint64_t Id = Sink.beginOp("create", milliseconds(1));
  EXPECT_EQ(1u, Id); // Ids are 1-based record indices.
  Sink.stamp(Id, TracePoint::NetOut, milliseconds(2));
  Sink.finishOp(Id, milliseconds(5));

  ASSERT_EQ(1u, Sink.records().size());
  const OpTraceRecord &R = Sink.records()[0];
  EXPECT_STREQ("create", R.Op);
  EXPECT_EQ(milliseconds(1), R.at(TracePoint::Submit));
  EXPECT_EQ(milliseconds(2), R.at(TracePoint::NetOut));
  EXPECT_EQ(milliseconds(5), R.at(TracePoint::Deliver));
  EXPECT_FALSE(R.has(TracePoint::ServiceStart));
  EXPECT_TRUE(R.delivered());
  EXPECT_EQ(0u, Sink.liveOps());
}

TEST(TraceSink, FirstStampWinsExceptServicePoints) {
  OpTraceSink Sink;
  uint64_t Id = Sink.beginOp("open", 0);
  Sink.stamp(Id, TracePoint::NetOut, milliseconds(1));
  Sink.stamp(Id, TracePoint::NetOut, milliseconds(9)); // Ignored.
  // ServiceStart/ServiceEnd are last-wins: a request forwarded between
  // servers (GX indirect volumes) is in service until the last hop ends.
  Sink.stamp(Id, TracePoint::ServiceStart, milliseconds(2));
  Sink.stamp(Id, TracePoint::ServiceStart, milliseconds(3));
  Sink.stamp(Id, TracePoint::ServiceEnd, milliseconds(4));
  Sink.stamp(Id, TracePoint::ServiceEnd, milliseconds(6));

  const OpTraceRecord &R = Sink.records()[0];
  EXPECT_EQ(milliseconds(1), R.at(TracePoint::NetOut));
  EXPECT_EQ(milliseconds(3), R.at(TracePoint::ServiceStart));
  EXPECT_EQ(milliseconds(6), R.at(TracePoint::ServiceEnd));
}

TEST(TraceSink, UnknownIdsAreIgnored) {
  OpTraceSink Sink;
  Sink.stamp(0, TracePoint::NetOut, milliseconds(1));  // Untraced op.
  Sink.stamp(42, TracePoint::NetOut, milliseconds(1)); // Out of range.
  Sink.finishOp(0, milliseconds(2));
  EXPECT_TRUE(Sink.records().empty());
}

TEST(TraceSink, LateStampsAfterDeliveryStillLand) {
  // Write-back models ack the client before the server commits: the
  // ServiceEnd stamp arrives after Deliver and must still be recorded.
  OpTraceSink Sink;
  uint64_t Id = Sink.beginOp("mkdir", 0);
  Sink.finishOp(Id, milliseconds(1));
  EXPECT_EQ(0u, Sink.liveOps());
  Sink.stamp(Id, TracePoint::ServiceEnd, milliseconds(7));
  EXPECT_EQ(milliseconds(7),
            Sink.records()[0].at(TracePoint::ServiceEnd));
}

TEST(TraceSink, LiveOpsCountsUndelivered) {
  OpTraceSink Sink;
  uint64_t A = Sink.beginOp("a", 0);
  Sink.beginOp("b", 0);
  EXPECT_EQ(2u, Sink.liveOps());
  Sink.finishOp(A, milliseconds(1));
  EXPECT_EQ(1u, Sink.liveOps());
  Sink.clear();
  EXPECT_TRUE(Sink.records().empty());
}

TEST(TraceSink, OpNamesAreInternedToDenseIds) {
  OpTraceSink Sink;
  Sink.beginOp("create", 0);
  Sink.beginOp("stat", 0);
  Sink.beginOp("create", 0);
  EXPECT_EQ(2u, Sink.opCount());
  EXPECT_EQ(Sink.records()[0].OpId, Sink.records()[2].OpId);
  EXPECT_NE(Sink.records()[0].OpId, Sink.records()[1].OpId);
  EXPECT_EQ("create", Sink.opName(Sink.records()[0].OpId));
  EXPECT_EQ(Sink.records()[1].OpId, Sink.opId("stat"));
  EXPECT_EQ(Interner::None, Sink.opId("unlink"));
}

TEST(TraceSink, EqualNamesBehindDistinctPointersShareAnId) {
  // The pointer cache is an optimization for metaOpName's static table;
  // two distinct pointers to equal text must still intern to one id.
  std::string A = "mkdir", B = "mkdir";
  ASSERT_NE(A.c_str(), B.c_str());
  OpTraceSink Sink;
  Sink.beginOp(A.c_str(), 0);
  Sink.beginOp(B.c_str(), 0);
  EXPECT_EQ(1u, Sink.opCount());
  EXPECT_EQ(Sink.records()[0].OpId, Sink.records()[1].OpId);
}

TEST(TraceSink, ClearKeepsStorageAndOpNames) {
  OpTraceSink Sink;
  Sink.reserveOps(100);
  Sink.beginOp("create", 0);
  EXPECT_GE(Sink.records().capacity(), 100u);
  size_t Cap = Sink.records().capacity();
  Sink.clear();
  // Records are gone, but the sized storage and the name table survive
  // for the next sweep point.
  EXPECT_TRUE(Sink.records().empty());
  EXPECT_EQ(Cap, Sink.records().capacity());
  EXPECT_EQ(1u, Sink.opCount());
  EXPECT_EQ(0u, Sink.opId("create"));
}

//===----------------------------------------------------------------------===//
// Trace-id propagation through the scheduler and primitives
//===----------------------------------------------------------------------===//

TEST(TraceScheduler, DisabledTracingIsANoOp) {
  Scheduler S;
  EXPECT_EQ(nullptr, S.traceSink());
  EXPECT_EQ(0u, S.traceBegin("create"));
  S.traceStamp(TracePoint::NetOut); // Must not crash.
  S.traceFinish(0);
  EXPECT_EQ(0u, S.activeTrace());
}

TEST(TraceScheduler, AmbientIdFlowsThroughScheduledEvents) {
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);

  uint64_t Id = S.traceBegin("create");
  EXPECT_EQ(Id, S.activeTrace());
  // The chain of events spawned by this operation keeps its id without
  // any explicit forwarding.
  S.after(milliseconds(1), [&] {
    EXPECT_EQ(Id, S.activeTrace());
    S.traceStamp(TracePoint::NetOut);
    S.after(milliseconds(1), [&] {
      S.traceStamp(TracePoint::QueueEnter);
      S.traceFinish(S.activeTrace());
    });
  });
  // An unrelated event scheduled outside any operation has no id.
  S.swapActiveTrace(0);
  S.at(milliseconds(5), [&] { EXPECT_EQ(0u, S.activeTrace()); });
  S.run();

  const OpTraceRecord &R = Sink.records()[0];
  EXPECT_EQ(milliseconds(1), R.at(TracePoint::NetOut));
  EXPECT_EQ(milliseconds(2), R.at(TracePoint::QueueEnter));
  EXPECT_EQ(milliseconds(2), R.at(TracePoint::Deliver));
  EXPECT_EQ(0u, S.activeTrace()); // Reset after every event.
}

TEST(TraceResource, QueuedRequestKeepsItsOperationId) {
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  Resource Disk(S, "disk", 1);

  uint64_t A = S.traceBegin("a");
  Disk.request(milliseconds(10), [&] { S.traceFinish(A); });
  uint64_t B = S.traceBegin("b"); // Queues behind A on the single server.
  Disk.request(milliseconds(10), [&] { S.traceFinish(B); });
  S.swapActiveTrace(0);
  S.run();

  const OpTraceRecord &Ra = Sink.records()[0];
  const OpTraceRecord &Rb = Sink.records()[1];
  EXPECT_EQ(0, Ra.at(TracePoint::ServiceStart));
  EXPECT_EQ(milliseconds(10), Ra.at(TracePoint::ServiceEnd));
  // B's service spans stamp onto B's record even though the resource
  // resumed it long after the submitting event finished.
  EXPECT_EQ(milliseconds(10), Rb.at(TracePoint::ServiceStart));
  EXPECT_EQ(milliseconds(20), Rb.at(TracePoint::ServiceEnd));
  EXPECT_EQ(milliseconds(20), Rb.at(TracePoint::Deliver));
}

TEST(TraceMutex, WakeupRunsUnderTheWaitersId) {
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  SimMutex M(S, "token");

  S.traceBegin("holder");
  M.lock([&] {
    S.traceStamp(TracePoint::QueueEnter); // Record 1.
    M.unlock();
  });
  S.traceBegin("waiter");
  M.lock([&] {
    S.traceStamp(TracePoint::NetOut); // Must land on record 2.
    M.unlock();
  });
  S.swapActiveTrace(0);
  S.run();

  EXPECT_TRUE(Sink.records()[0].has(TracePoint::QueueEnter));
  EXPECT_FALSE(Sink.records()[0].has(TracePoint::NetOut));
  EXPECT_TRUE(Sink.records()[1].has(TracePoint::NetOut));
  EXPECT_FALSE(Sink.records()[1].has(TracePoint::QueueEnter));
}

//===----------------------------------------------------------------------===//
// Server metrics transition log
//===----------------------------------------------------------------------===//

TEST(TraceMetrics, ResourceRecordsQueueTransitions) {
  Scheduler S;
  Resource Disk(S, "disk", 1);
  EXPECT_FALSE(Disk.metricsEnabled());
  Disk.enableMetrics();
  ASSERT_FALSE(Disk.metricsSamples().empty()); // Initial idle sample.

  Disk.request(milliseconds(10), [] {});
  Disk.request(milliseconds(10), [] {}); // Queues.
  S.run();

  const std::vector<Resource::MetricsSample> &Samples =
      Disk.metricsSamples();
  // Times never decrease, and the log ends idle.
  for (size_t I = 1; I < Samples.size(); ++I)
    EXPECT_LE(Samples[I - 1].When, Samples[I].When);
  EXPECT_EQ(0u, Samples.back().Busy);
  EXPECT_EQ(0u, Samples.back().QueueLen);
  // Some sample saw the queued request.
  bool SawQueue = false;
  for (const Resource::MetricsSample &Smp : Samples)
    SawQueue = SawQueue || Smp.QueueLen > 0;
  EXPECT_TRUE(SawQueue);
}

TEST(TraceMetrics, ResampleIntegratesPiecewiseState) {
  // Hand-built transition log of a 1-server resource: busy from 0 to
  // 15 ms, idle after. On a 10 ms grid the first interval is fully busy
  // and the second is half busy.
  std::vector<Resource::MetricsSample> Log;
  Log.push_back({0, 1, 1});                // One queued, one in service.
  Log.push_back({milliseconds(10), 0, 1}); // Queue drained.
  Log.push_back({milliseconds(15), 0, 0}); // Idle.

  std::vector<ResourceMetricsRow> Rows =
      resampleResourceMetrics(Log, 1, 0.0, 0.01, 2);
  ASSERT_EQ(2u, Rows.size());
  EXPECT_NEAR(1.0, Rows[0].Utilization, 1e-12);
  EXPECT_NEAR(0.5, Rows[1].Utilization, 1e-12);
  EXPECT_DOUBLE_EQ(0.0, Rows[1].QueueDepth);

  std::string Tsv = resourceMetricsTsv(Rows);
  EXPECT_NE(std::string::npos, Tsv.find("time_s\tqueue_depth"));
  EXPECT_NE(std::string::npos, Tsv.find("0.500"));
}

//===----------------------------------------------------------------------===//
// Live NFS runs: causality, client queueing, no perturbation
//===----------------------------------------------------------------------===//

ResultSet runNfsMakeFiles(OpTraceSink *Sink) {
  Scheduler S;
  if (Sink)
    S.setTraceSink(Sink);
  Cluster C(S, 2, 4);
  NfsFs Fs(S);
  C.mountEverywhere(Fs);
  BenchParams P;
  P.Operations = {"MakeFiles"};
  P.ProblemSize = 200;
  MpiEnvironment Env = MpiEnvironment::uniform(2, 2);
  Master M(C, Env, "nfs", P);
  return M.runCombination(2, 1);
}

TEST(TraceIntegration, NfsSpansAreCausallyOrdered) {
  OpTraceSink Sink;
  ResultSet Res = runNfsMakeFiles(&Sink);
  ASSERT_FALSE(Sink.records().empty());
  EXPECT_EQ(0u, Sink.liveOps());

  for (const OpTraceRecord &R : Sink.records()) {
    ASSERT_TRUE(R.delivered());
    // NFS metadata ops are synchronous RPCs: all six points, in order.
    for (TracePoint P :
         {TracePoint::NetOut, TracePoint::QueueEnter,
          TracePoint::ServiceStart, TracePoint::ServiceEnd})
      ASSERT_TRUE(R.has(P));
    EXPECT_LE(R.at(TracePoint::Submit), R.at(TracePoint::NetOut));
    EXPECT_LT(R.at(TracePoint::NetOut), R.at(TracePoint::QueueEnter));
    EXPECT_LE(R.at(TracePoint::QueueEnter),
              R.at(TracePoint::ServiceStart));
    EXPECT_LE(R.at(TracePoint::ServiceStart),
              R.at(TracePoint::ServiceEnd));
    EXPECT_LT(R.at(TracePoint::ServiceEnd), R.at(TracePoint::Deliver));
    // The one-way wire latency is strictly positive on this model.
    EXPECT_GT(spanBreakdown(R).Network, 0.0);
  }

  // The run's result set carries the rendered report, and the result-file
  // manifest gains trace.txt next to diagnostics.txt.
  EXPECT_NE(std::string::npos, Res.TraceSummary.find("operation"));
  std::vector<std::string> Names = resultSetFileNames(Res);
  EXPECT_NE(Names.end(),
            std::find(Names.begin(), Names.end(), "trace.txt"));
}

TEST(TraceIntegration, TracingDoesNotPerturbMeasurement) {
  OpTraceSink Sink;
  ResultSet Traced = runNfsMakeFiles(&Sink);
  ResultSet Plain = runNfsMakeFiles(nullptr);

  // Bit-identical interval series and an identical event count in the
  // quiescence diagnostics: attaching the sink changed nothing.
  ASSERT_EQ(Plain.Subtasks.size(), Traced.Subtasks.size());
  EXPECT_EQ(intervalSummaryTsv(Plain.Subtasks[0]),
            intervalSummaryTsv(Traced.Subtasks[0]));
  EXPECT_EQ(Plain.Diagnostics, Traced.Diagnostics);
  EXPECT_EQ(stonewallAverage(Plain.Subtasks[0]),
            stonewallAverage(Traced.Subtasks[0]));
  EXPECT_TRUE(Plain.TraceSummary.empty());
  EXPECT_FALSE(Traced.TraceSummary.empty());
}

TEST(TraceIntegration, ExhaustedRpcSlotsShowAsClientQueueSpan) {
  Scheduler S;
  OpTraceSink Sink;
  S.setTraceSink(&Sink);
  NfsOptions O;
  O.Client.RpcSlots = 1; // Force the second RPC to wait for the slot.
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> C = Fs.makeClient(0);

  uint64_t A = S.traceBegin("open");
  C->submit(makeOpen("/a", OpenWrite | OpenCreate),
            [&](MetaReply) { S.traceFinish(A); });
  uint64_t B = S.traceBegin("open");
  C->submit(makeOpen("/b", OpenWrite | OpenCreate),
            [&](MetaReply) { S.traceFinish(B); });
  S.swapActiveTrace(0);
  S.run();

  SpanBreakdown First = spanBreakdown(Sink.records()[0]);
  SpanBreakdown Second = spanBreakdown(Sink.records()[1]);
  EXPECT_DOUBLE_EQ(0.0, First.ClientQueue); // Got the slot immediately.
  EXPECT_GT(Second.ClientQueue, 0.0);       // Waited for A's round trip.
}

//===----------------------------------------------------------------------===//
// Analysis on top of the records
//===----------------------------------------------------------------------===//

TEST(TraceAnalysisStats, ExactPercentilesAndMean) {
  OpTraceSink Sink;
  for (int I = 1; I <= 100; ++I) {
    uint64_t Id = Sink.beginOp("create", 0);
    Sink.finishOp(Id, milliseconds(I));
  }
  // Undelivered records are excluded.
  Sink.beginOp("create", 0);

  std::vector<OpLatencyStats> Stats = traceStats(Sink);
  ASSERT_EQ(1u, Stats.size());
  EXPECT_EQ("create", Stats[0].Op);
  EXPECT_EQ(100u, Stats[0].Count);
  EXPECT_NEAR(0.0505, Stats[0].MeanSec, 1e-12);
  EXPECT_NEAR(0.050, Stats[0].P50Sec, 1e-12);
  EXPECT_NEAR(0.095, Stats[0].P95Sec, 1e-12);
  EXPECT_NEAR(0.099, Stats[0].P99Sec, 1e-12);
  EXPECT_NEAR(0.100, Stats[0].MaxSec, 1e-12);

  std::string Histogram = renderLatencyHistogram(Sink, "create");
  EXPECT_NE(std::string::npos,
            Histogram.find("latency histogram (create), 100 ops"));
  std::string Report = renderTraceReport(Sink);
  EXPECT_NE(std::string::npos, Report.find("create"));
  EXPECT_NE(std::string::npos, Report.find("p99"));
}

TEST(TraceAnalysisStats, PercentileOfEmptyAndSingletonSamples) {
  // Regression: the nearest-rank index of an empty sample is
  // min(0, size()-1) with size()-1 wrapped to SIZE_MAX — an out-of-bounds
  // read. An empty sample must report 0 instead.
  std::vector<double> Empty;
  EXPECT_DOUBLE_EQ(0.0, percentileSorted(Empty, 0.50));
  EXPECT_DOUBLE_EQ(0.0, percentileSorted(Empty, 0.99));
  std::vector<double> One{0.25};
  EXPECT_DOUBLE_EQ(0.25, percentileSorted(One, 0.50));
  EXPECT_DOUBLE_EQ(0.25, percentileSorted(One, 0.95));
  EXPECT_DOUBLE_EQ(0.25, percentileSorted(One, 0.99));

  // A sink whose only records were never delivered yields no stats rows
  // and a well-formed (empty) report rather than touching empty groups.
  OpTraceSink Sink;
  Sink.beginOp("create", 0);
  Sink.beginOp("create", 0);
  EXPECT_TRUE(traceStats(Sink).empty());
  EXPECT_NE(std::string::npos,
            renderTraceReport(Sink).find("no delivered operations"));
}

TEST(TraceAnalysisStats, SingleDeliveredRecordHasDegeneratePercentiles) {
  OpTraceSink Sink;
  uint64_t Id = Sink.beginOp("stat", 0);
  Sink.finishOp(Id, milliseconds(2));
  std::vector<OpLatencyStats> Stats = traceStats(Sink);
  ASSERT_EQ(1u, Stats.size());
  EXPECT_EQ(1u, Stats[0].Count);
  // Every percentile of a one-element sample is that element.
  EXPECT_NEAR(0.002, Stats[0].P50Sec, 1e-12);
  EXPECT_NEAR(0.002, Stats[0].P99Sec, 1e-12);
  EXPECT_NEAR(0.002, Stats[0].MaxSec, 1e-12);
}

TEST(TraceAnalysisStats, SpanBreakdownClampsAndSkipsUnset) {
  OpTraceRecord R;
  R.At[static_cast<size_t>(TracePoint::Submit)] = 0;
  R.At[static_cast<size_t>(TracePoint::NetOut)] = milliseconds(1);
  R.At[static_cast<size_t>(TracePoint::QueueEnter)] = milliseconds(3);
  R.At[static_cast<size_t>(TracePoint::ServiceStart)] = milliseconds(4);
  // Write-back: delivered before service ended; the inverted reply hop
  // contributes 0, not a negative span.
  R.At[static_cast<size_t>(TracePoint::Deliver)] = milliseconds(5);
  R.At[static_cast<size_t>(TracePoint::ServiceEnd)] = milliseconds(9);

  SpanBreakdown B = spanBreakdown(R);
  EXPECT_NEAR(0.001, B.ClientQueue, 1e-12);
  EXPECT_NEAR(0.002, B.Network, 1e-12); // Request hop only.
  EXPECT_NEAR(0.001, B.ServerQueue, 1e-12);
  EXPECT_NEAR(0.005, B.Service, 1e-12);

  // A cache hit that never left the client: everything except the total
  // is zero.
  OpTraceRecord Hit;
  Hit.At[static_cast<size_t>(TracePoint::Submit)] = 0;
  Hit.At[static_cast<size_t>(TracePoint::Deliver)] = microseconds(2);
  SpanBreakdown HB = spanBreakdown(Hit);
  EXPECT_DOUBLE_EQ(0.0, HB.total());
}

TEST(TraceAnalysisStats, LatencyBreakdownChartRenders) {
  OpTraceSink Sink;
  uint64_t Id = Sink.beginOp("stat", 0);
  Sink.stamp(Id, TracePoint::NetOut, microseconds(10));
  Sink.stamp(Id, TracePoint::QueueEnter, microseconds(110));
  Sink.stamp(Id, TracePoint::ServiceStart, microseconds(150));
  Sink.stamp(Id, TracePoint::ServiceEnd, microseconds(250));
  Sink.finishOp(Id, microseconds(350));

  std::vector<OpLatencyStats> Stats = traceStats(Sink);
  std::string Chart = renderLatencyBreakdownChart(Stats, "breakdown");
  EXPECT_NE(std::string::npos, Chart.find("breakdown"));
  EXPECT_NE(std::string::npos, Chart.find("stat"));
  EXPECT_NE(std::string::npos, Chart.find("legend"));
  // The 350 us mean shows up in the row label.
  EXPECT_NE(std::string::npos, Chart.find("0.350 ms"));

  std::string Tsv = latencyBreakdownTsv(Stats);
  EXPECT_NE(std::string::npos, Tsv.find("op\tcount\tmean_s"));
  EXPECT_NE(std::string::npos, Tsv.find("stat"));
}

} // namespace
