//===- tests/WriteBehindTest.cpp - Client write-behind pipeline -----------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the reusable client write-behind layer (dfs/WriteBehind.h):
/// deferred local acks and bulk flushing, the three flush triggers,
/// coalescing, queue-local handle translation, the dirty-op cap, sticky
/// flush errors, and — the core contract — that an fsync drains exactly
/// the dependency closure of its target, verified under permuted event
/// schedules.
///
//===----------------------------------------------------------------------===//

#include "dmetabench/DMetabench.h"
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

using namespace dmb;

namespace {

/// Submits \p Req and runs the simulation until the reply arrives.
MetaReply runSync(Scheduler &S, ClientFs &C, MetaRequest Req) {
  MetaReply Out;
  bool Got = false;
  C.submit(Req, [&](MetaReply R) {
    Out = std::move(R);
    Got = true;
  });
  S.run();
  EXPECT_TRUE(Got) << "operation did not complete";
  return Out;
}

/// NFS deployment with the deferred write-behind pipeline enabled.
NfsOptions deferredNfs() {
  NfsOptions O;
  O.Client.WriteBehind.Enabled = true;
  return O;
}

OpCtx userCtx() {
  OpCtx Ctx;
  Ctx.Creds.Uid = 1000;
  Ctx.Creds.Gid = 1000;
  return Ctx;
}

//===----------------------------------------------------------------------===//
// Deferred acks and flush triggers
//===----------------------------------------------------------------------===//

TEST(WriteBehind, DeferredAcksLocallyAndFlushesOnDwellTimer) {
  Scheduler S;
  NfsFs Fs(S, deferredNfs());
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  int Acked = 0;
  for (int I = 0; I < 5; ++I)
    C->submit(makeMkdir("/d" + std::to_string(I)), [&](MetaReply R) {
      ASSERT_TRUE(R.ok());
      ++Acked;
    });
  // All five ack from the local queue long before any RPC could return;
  // nothing has reached the server yet (the dwell timer is 2 ms).
  S.runUntil(milliseconds(1));
  EXPECT_EQ(5, Acked);
  EXPECT_EQ(0u, Fs.server().processedRequests());
  ASSERT_NE(nullptr, C->writeBehind());
  EXPECT_EQ(5u, C->writeBehind()->dirtyOps());

  // The dwell timer fires and the batch issues as one flush.
  S.run();
  EXPECT_EQ(5u, Fs.server().processedRequests());
  EXPECT_EQ(1u, C->writeBehind()->flushes());
  EXPECT_EQ(5u, C->writeBehind()->issuedOps());
  EXPECT_EQ(0u, C->writeBehind()->dirtyOps());
}

TEST(WriteBehind, OpCountTriggerFlushesBeforeTheTimer) {
  NfsOptions O = deferredNfs();
  O.Client.WriteBehind.FlushMaxOps = 3;
  Scheduler S;
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> C = Fs.makeClient(0);

  for (int I = 0; I < 3; ++I)
    C->submit(makeMkdir("/d" + std::to_string(I)), [](MetaReply) {});
  // The third enqueue hits the count trigger: the batch is at the server
  // well inside the 2 ms dwell window.
  S.runUntil(milliseconds(1));
  EXPECT_EQ(3u, Fs.server().processedRequests());
}

TEST(WriteBehind, ByteTriggerFlushesQueuedWrites) {
  NfsOptions O = deferredNfs();
  O.Client.WriteBehind.FlushMaxBytes = 1024;
  Scheduler S;
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  C->submit(makeOpen("/f", OpenWrite | OpenCreate), [&](MetaReply R) {
    ASSERT_TRUE(R.ok());
    C->submit(makeWrite(R.Fh, 600), [](MetaReply) {});
    C->submit(makeWrite(R.Fh, 600), [](MetaReply) {});
  });
  // 1200 queued bytes cross the 1 KiB trigger: the chain flushes without
  // waiting for the dwell timer.
  S.runUntil(milliseconds(1));
  EXPECT_GE(Fs.server().processedRequests(), 2u);

  S.run();
  // The two writes coalesced into one appended wire op.
  EXPECT_EQ(1u, C->writeBehind()->coalescedOps());
  LocalFileSystem *Vol = Fs.server().volume(NfsFs::VolumeName);
  OpCtx Ctx = userCtx();
  ASSERT_TRUE(Vol->stat(Ctx, "/f").ok());
  EXPECT_EQ(1200u, Vol->stat(Ctx, "/f")->Size);
}

//===----------------------------------------------------------------------===//
// Coalescing and dependency ordering
//===----------------------------------------------------------------------===//

TEST(WriteBehind, RepeatedSetattrsCoalesceToTheLastValue) {
  Scheduler S;
  NfsFs Fs(S, deferredNfs());
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());
  ASSERT_EQ(FsError::Ok, runSync(S, *C, makeMkdir("/d")).Err);
  uint64_t IssuedBefore = C->writeBehind()->issuedOps();

  for (uint32_t Mode : {0700u, 0750u, 0755u}) {
    MetaRequest Chmod;
    Chmod.Op = MetaOp::Chmod;
    Chmod.Path = "/d";
    Chmod.Mode = Mode;
    C->submit(Chmod, [](MetaReply R) { ASSERT_TRUE(R.ok()); });
  }
  S.run();
  // One wire op carried the final mode.
  EXPECT_EQ(2u, C->writeBehind()->coalescedOps());
  EXPECT_EQ(IssuedBefore + 1, C->writeBehind()->issuedOps());
  LocalFileSystem *Vol = Fs.server().volume(NfsFs::VolumeName);
  OpCtx Ctx = userCtx();
  EXPECT_EQ(0755u, Vol->stat(Ctx, "/d")->Mode & 0777u);
}

TEST(WriteBehind, CreateChainIssuesInDependencyOrder) {
  // mkdir -> create -> write -> close on one path must reach the server
  // in that order even though all four sit in one flushed batch, with the
  // queue-local handle translated to the server handle at issue time.
  Scheduler S;
  NfsFs Fs(S, deferredNfs());
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  std::vector<FsError> Errs;
  C->submit(makeMkdir("/d"), [&](MetaReply R) { Errs.push_back(R.Err); });
  C->submit(makeOpen("/d/f", OpenWrite | OpenCreate), [&](MetaReply R) {
    Errs.push_back(R.Err);
    ASSERT_TRUE(R.ok());
    C->submit(makeWrite(R.Fh, 100), [&](MetaReply W) {
      Errs.push_back(W.Err);
    });
    C->submit(makeClose(R.Fh), [&](MetaReply Cl) {
      Errs.push_back(Cl.Err);
    });
  });
  S.run();
  EXPECT_EQ(std::vector<FsError>(4, FsError::Ok), Errs);
  LocalFileSystem *Vol = Fs.server().volume(NfsFs::VolumeName);
  OpCtx Ctx = userCtx();
  ASSERT_TRUE(Vol->stat(Ctx, "/d/f").ok());
  EXPECT_EQ(100u, Vol->stat(Ctx, "/d/f")->Size);
  EXPECT_TRUE(Vol->fsck().clean());
}

TEST(WriteBehind, PassThroughReadDrainsAndTranslatesTheHandle) {
  Scheduler S;
  NfsFs Fs(S, deferredNfs());
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  MetaReply O =
      runSync(S, *C, makeOpen("/f", OpenRead | OpenWrite | OpenCreate));
  ASSERT_TRUE(O.ok());
  C->submit(makeWrite(O.Fh, 64), [](MetaReply) {});
  // Seek and read on the queue-local handle are pass-through operations:
  // each must first drain the open/write closure, then issue against the
  // server handle the open resolved to.
  MetaRequest Rewind;
  Rewind.Op = MetaOp::Seek;
  Rewind.Fh = O.Fh;
  Rewind.Bytes = 0;
  ASSERT_TRUE(runSync(S, *C, Rewind).ok());
  MetaReply R = runSync(S, *C, makeRead(O.Fh, 64));
  EXPECT_EQ(FsError::Ok, R.Err);
  EXPECT_EQ(64u, R.Bytes);
}

//===----------------------------------------------------------------------===//
// Dirty-op cap, sticky errors
//===----------------------------------------------------------------------===//

TEST(WriteBehind, MaxQueuedOpsStallsAdmissionInOrder) {
  NfsOptions O = deferredNfs();
  O.Client.WriteBehind.MaxQueuedOps = 4;
  O.Client.WriteBehind.FlushMaxOps = 3;
  Scheduler S;
  NfsFs Fs(S, O);
  std::unique_ptr<ClientFs> C = Fs.makeClient(0);

  std::vector<int> AckOrder;
  for (int I = 0; I < 10; ++I)
    C->submit(makeMkdir("/t" + std::to_string(I)), [&AckOrder, I](MetaReply R) {
      ASSERT_TRUE(R.ok());
      AckOrder.push_back(I);
    });
  // Only up to the cap is acked instantly; the rest waits for the
  // pipeline to drain.
  S.runUntil(microseconds(50));
  EXPECT_EQ(4u, AckOrder.size());
  S.run();
  ASSERT_EQ(10u, AckOrder.size());
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(I, AckOrder[I]) << "stall must preserve FIFO admission";
  EXPECT_EQ(10u, Fs.server().processedRequests());
}

TEST(WriteBehind, FlushErrorIsStickyUntilTheNextBarrier) {
  Scheduler S;
  NfsFs Fs(S, deferredNfs());
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<NfsClient *>(Client.get());

  // The local ack is optimistic: the queue predicts success even though
  // the parent directory does not exist.
  MetaReply Local = runSync(S, *C, makeMkdir("/missing/sub"));
  EXPECT_EQ(FsError::Ok, Local.Err);
  // The flush observed the server's NoEnt; the next fsync surfaces it
  // instead of swallowing it.
  EXPECT_EQ(1u, C->writeBehind()->flushErrors());
  EXPECT_EQ(FsError::NoEnt, C->writeBehind()->pendingError());
  EXPECT_EQ(FsError::NoEnt, runSync(S, *C, makeFsync(InvalidHandle)).Err);
  // Consumed: a second barrier reports a clean pipeline.
  EXPECT_EQ(FsError::Ok, runSync(S, *C, makeFsync(InvalidHandle)).Err);
}

//===----------------------------------------------------------------------===//
// Closure-only fsync barrier, under permuted schedules
//===----------------------------------------------------------------------===//

TEST(WriteBehind, FsyncDrainsExactlyTheDependencyClosure) {
  // Two independent chains share the queue. fsync on chain A's handle
  // must drain A's closure (mkdir /a, open /a/f, write, close) and
  // nothing else: chain B's ops stay queued behind their own triggers.
  // The whole interaction must be invariant under permuted same-timestamp
  // schedules — verifySchedules runs it 8 more times with perturbed tie
  // orders and compares this canonical output bit-for-bit.
  ScheduleScenario Sc;
  Sc.Name = "writebehind-closure-fsync";
  Sc.Run = [](Scheduler &S) {
    NfsOptions O = deferredNfs();
    // No count/byte/timer help: only barriers move this queue.
    O.Client.WriteBehind.FlushMaxOps = 1000;
    O.Client.WriteBehind.FlushMaxBytes = 1u << 30;
    O.Client.WriteBehind.FlushDelay = seconds(100.0);
    NfsFs Fs(S, O);
    std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
    auto *C = static_cast<NfsClient *>(Client.get());

    std::string Out;
    // Chain B: two ops with no relation to chain A.
    C->submit(makeMkdir("/b"), [](MetaReply) {});
    C->submit(makeOpen("/b/g", OpenWrite | OpenCreate), [](MetaReply) {});
    // Chain A, then the targeted barrier once its close is acked.
    C->submit(makeMkdir("/a"), [](MetaReply) {});
    C->submit(makeOpen("/a/f", OpenWrite | OpenCreate), [&](MetaReply R) {
      C->submit(makeWrite(R.Fh, 128), [](MetaReply) {});
      C->submit(makeClose(R.Fh), [](MetaReply) {});
      C->submit(makeFsync(R.Fh), [&, Fh = R.Fh](MetaReply F) {
        // At barrier completion exactly chain A reached the server.
        Out += "fsync=" + std::string(F.ok() ? "ok" : "err");
        Out += " served=" + std::to_string(Fs.server().processedRequests());
        Out += " still-queued=" +
               std::to_string(C->writeBehind()->dirtyOps());
        Out += "\n";
      });
    });
    S.run();
    // Chain B is still parked; a full barrier releases it.
    MetaReply Full = runSync(S, *C, makeFsync(InvalidHandle));
    Out += "full=" + std::string(Full.ok() ? "ok" : "err");
    Out += " served=" + std::to_string(Fs.server().processedRequests());
    LocalFileSystem *Vol = Fs.server().volume(NfsFs::VolumeName);
    OpCtx Ctx = userCtx();
    Out += " a=" + std::to_string(Vol->stat(Ctx, "/a/f").ok());
    Out += " b=" + std::to_string(Vol->stat(Ctx, "/b/g").ok());
    Out += " fsck=" + std::string(Vol->fsck().clean() ? "clean" : "dirty");
    Out += "\n";
    return Out;
  };

  ScheduleVerifyResult R = verifySchedules(Sc);
  EXPECT_TRUE(R.passed()) << R.Report;
  EXPECT_EQ(8u, R.SchedulesRun);

  // Pin the canonical interaction: the targeted fsync saw chain A's four
  // ops at the server with chain B's two still queued; the full barrier
  // brought the total to six.
  Scheduler S;
  std::string Out = Sc.Run(S);
  EXPECT_EQ("fsync=ok served=4 still-queued=2\n"
            "full=ok served=6 a=1 b=1 fsck=clean\n",
            Out);
}

//===----------------------------------------------------------------------===//
// The other clients opt in through the same policy
//===----------------------------------------------------------------------===//

TEST(WriteBehind, LustreClientOptsIntoTheDeferredPipeline) {
  Scheduler S;
  LustreOptions O;
  O.Client.WriteBehind.Enabled = true;
  LustreFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<LustreClient *>(Client.get());

  ASSERT_EQ(FsError::Ok, runSync(S, *C, makeMkdir("/d")).Err);
  MetaReply F = runSync(S, *C, makeOpen("/d/f", OpenWrite | OpenCreate));
  ASSERT_TRUE(F.ok());
  ASSERT_EQ(FsError::Ok, runSync(S, *C, makeClose(F.Fh)).Err);
  EXPECT_EQ(FsError::Ok, runSync(S, *C, makeFsync(InvalidHandle)).Err);
  EXPECT_EQ(0u, C->writeBehind()->dirtyOps());
  // A queued chmod still shadows the attribute cache (same invalidation
  // hook as the eager discipline).
  MetaReply St = runSync(S, *C, makeStat("/d/f"));
  ASSERT_TRUE(St.ok());
  MetaRequest Chmod;
  Chmod.Op = MetaOp::Chmod;
  Chmod.Path = "/d/f";
  Chmod.Mode = 0700;
  C->submit(Chmod, [](MetaReply R) { ASSERT_TRUE(R.ok()); });
  MetaReply St2 = runSync(S, *C, makeStat("/d/f"));
  EXPECT_EQ(0700u, St2.A.Mode & 0777u);
  LocalFileSystem *Vol = Fs.mds().volume(LustreFs::VolumeName);
  EXPECT_TRUE(Vol->fsck().clean());
}

TEST(WriteBehind, ShardedClientOptsIntoTheDeferredPipeline) {
  Scheduler S;
  ShardedOptions O;
  O.Client.WriteBehind.Enabled = true;
  ShardedFs Fs(S, O);
  std::unique_ptr<ClientFs> Client = Fs.makeClient(0);
  auto *C = static_cast<ShardedClient *>(Client.get());

  ASSERT_EQ(FsError::Ok, runSync(S, *C, makeMkdir("/d")).Err);
  for (int I = 0; I < 8; ++I) {
    MetaReply F = runSync(
        S, *C, makeOpen("/d/f" + std::to_string(I), OpenWrite | OpenCreate));
    ASSERT_TRUE(F.ok());
    ASSERT_EQ(FsError::Ok, runSync(S, *C, makeClose(F.Fh)).Err);
  }
  EXPECT_EQ(FsError::Ok, runSync(S, *C, makeFsync(InvalidHandle)).Err);
  EXPECT_EQ(0u, C->writeBehind()->dirtyOps());
  // The files are durably visible through a synchronous reader.
  std::unique_ptr<ClientFs> Reader = Fs.makeClient(1);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(runSync(S, *Reader, makeStat("/d/f" + std::to_string(I))).ok())
        << "/d/f" << I;
}

} // namespace
