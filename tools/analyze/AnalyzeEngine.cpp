//===- tools/analyze/AnalyzeEngine.cpp ------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/AnalyzeEngine.h"
#include "analyze/IncludeGraph.h"
#include "analyze/Tokenizer.h"
#include <algorithm>
#include <set>
#include <utility>

using namespace dmb;
using namespace dmb::analyze;

namespace {

const char *ToolName = "dmeta-analyze";

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

bool endsWith(const std::string &S, const char *Suffix) {
  std::string Suf(Suffix);
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

/// Rules about values that must not differ across identical runs apply to
/// everything whose output lands in results, traces or schedules.
bool determinismScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/") || startsWith(RelPath, "bench/") ||
         startsWith(RelPath, "tools/");
}

/// Callback-lifetime applies where a scheduled callback can outlive the
/// frame that created it. tests/ and bench/ drive the scheduler to
/// completion inside the capturing frame, so they are exempt.
bool lifetimeScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/") || startsWith(RelPath, "tools/");
}

bool isPunct(const Token &T, const char *Text) {
  return T.Kind == TokKind::Punct && T.Text == Text;
}

bool isIdent(const Token &T, const char *Text) {
  return T.Kind == TokKind::Ident && T.Text == Text;
}

/// Index of the token matching the closer at \p CloseIdx, walking
/// backwards ( ')' -> '(', ']' -> '[' ), or npos when unbalanced.
size_t matchBackward(const std::vector<Token> &T, size_t CloseIdx) {
  const std::string &Close = T[CloseIdx].Text;
  std::string Open = Close == ")" ? "(" : Close == "]" ? "[" : "{";
  int Depth = 0;
  for (size_t I = CloseIdx + 1; I-- > 0;) {
    if (T[I].Kind != TokKind::Punct)
      continue;
    if (T[I].Text == Close)
      ++Depth;
    else if (T[I].Text == Open && --Depth == 0)
      return I;
  }
  return std::string::npos;
}

/// True when the '[' at \p I opens a lambda capture list rather than a
/// subscript or attribute: it follows a token that can only precede an
/// expression, not a value.
bool isLambdaIntroducer(const std::vector<Token> &T, size_t I) {
  if (!isPunct(T[I], "["))
    return false;
  if (I == 0)
    return false;
  const Token &P = T[I - 1];
  if (P.Kind == TokKind::Punct)
    return P.Text == "(" || P.Text == "," || P.Text == "=" || P.Text == "{";
  return isIdent(P, "return");
}

/// The engine proper: one instance per analyzeSources call, shared state
/// is the parsed files and the harvested error-returning function names.
class RuleEngine {
public:
  RuleEngine(const std::vector<SourceFile> &Files, std::vector<Finding> &Out)
      : Files(Files), Out(Out) {}

  void run() {
    harvestErrorFunctions();
    // Container declarations are tracked per file first, so a .cpp can
    // inherit the members its own header declares (fsck iterating the
    // header-declared inode table must still be seen).
    std::map<std::string, ContainerSets> Tracked;
    for (const SourceFile &F : Files)
      Tracked[F.RelPath] = trackContainers(F);
    for (const SourceFile &F : Files) {
      ContainerSets CS = Tracked[F.RelPath];
      if (endsWith(F.RelPath, ".cpp")) {
        auto HdrIt = Tracked.find(
            F.RelPath.substr(0, F.RelPath.size() - 4) + ".h");
        if (HdrIt != Tracked.end())
          CS.merge(HdrIt->second);
      }
      // A name declared as BOTH an ordered and an unordered container
      // (two classes in one file reusing a member name) is ambiguous;
      // stay silent rather than flag iteration over the ordered one.
      for (const std::string &O : CS.Ordered) {
        CS.Unordered.erase(O);
        CS.PtrKeyed.erase(O);
      }
      UnorderedVars = CS.Unordered;
      PtrKeyedVars = CS.PtrKeyed;
      InplaceVars = CS.Inplace;
      if (determinismScope(F.RelPath)) {
        checkLoops(F);
        checkPointerFormatting(F);
        checkDiscardedErrors(F);
      }
      if (lifetimeScope(F.RelPath))
        checkCallbackLifetime(F);
      if (startsWith(F.RelPath, "src/") && endsWith(F.RelPath, ".h"))
        checkNodiscardAnnotations(F);
    }
    IncludeGraph Graph(Files);
    Graph.check(Out);
  }

private:
  void emit(const SourceFile &F, int Line, const std::string &Rule,
            const std::string &Message) {
    const std::string &Raw = Line >= 1 &&
                                     static_cast<size_t>(Line) <=
                                         F.RawLines.size()
                                 ? F.RawLines[Line - 1]
                                 : Empty;
    if (allowedOnLine(Raw, ToolName, Rule))
      return;
    Out.push_back({F.RelPath, Line, Rule, Message});
  }

  //===--------------------------------------------------------------------===
  // Container declaration tracking (per file)
  //===--------------------------------------------------------------------===

  /// True when the first template argument of the '<' at \p Lt spells a
  /// pointer type (`Foo *`), i.e. a '*' appears before the first top-level
  /// comma.
  static bool firstArgIsPointer(const std::vector<Token> &T, size_t Lt) {
    size_t Close = matchForward(T, Lt);
    if (Close >= T.size())
      return false;
    int Angle = 0;
    for (size_t I = Lt + 1; I < Close; ++I) {
      if (isPunct(T[I], "<"))
        ++Angle;
      else if (isPunct(T[I], ">"))
        --Angle;
      else if (Angle == 0 && isPunct(T[I], ","))
        return false;
      else if (Angle == 0 && isPunct(T[I], "*"))
        return true;
    }
    return false;
  }

  /// Variables of interest declared by one file. Ordered holds names of
  /// deterministically-ordered associative containers, used only to
  /// resolve cross-class name collisions.
  struct ContainerSets {
    std::set<std::string> Unordered, PtrKeyed, Inplace, Ordered;
    void merge(const ContainerSets &O) {
      Unordered.insert(O.Unordered.begin(), O.Unordered.end());
      PtrKeyed.insert(O.PtrKeyed.begin(), O.PtrKeyed.end());
      Inplace.insert(O.Inplace.begin(), O.Inplace.end());
      Ordered.insert(O.Ordered.begin(), O.Ordered.end());
    }
  };

  /// Records variables (locals and members) of unordered or pointer-keyed
  /// associative container types, following same-file using-aliases.
  ContainerSets trackContainers(const SourceFile &F) {
    ContainerSets CS;
    std::set<std::string> UnorderedAliases, PtrKeyedAliases;
    const std::vector<Token> &T = F.Toks.Tokens;

    static const std::set<std::string> UnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::set<std::string> AssocTypes = {
        "map",           "set",           "multimap",
        "multiset",      "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset"};

    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident)
        continue;

      // using Alias = std::unordered_map<...>;
      if (T[I].Text == "using" && I + 2 < T.size() &&
          T[I + 1].Kind == TokKind::Ident && isPunct(T[I + 2], "=")) {
        for (size_t J = I + 3; J < T.size() && !isPunct(T[J], ";"); ++J) {
          if (T[J].Kind != TokKind::Ident)
            continue;
          if (UnorderedTypes.count(T[J].Text))
            UnorderedAliases.insert(T[I + 1].Text);
          if (AssocTypes.count(T[J].Text) && J + 1 < T.size() &&
              isPunct(T[J + 1], "<") && firstArgIsPointer(T, J + 1))
            PtrKeyedAliases.insert(T[I + 1].Text);
        }
        continue;
      }

      // TypeName<...> [*&const]* VarName
      bool Unordered = UnorderedTypes.count(T[I].Text) > 0;
      bool Assoc = AssocTypes.count(T[I].Text) > 0;
      if ((Unordered || Assoc) && isPunct(T[I + 1], "<")) {
        bool PtrKeyed = firstArgIsPointer(T, I + 1);
        size_t Close = matchForward(T, I + 1);
        if (Close >= T.size())
          continue;
        size_t J = Close + 1;
        while (J < T.size() &&
               (isPunct(T[J], "*") || isPunct(T[J], "&") ||
                isIdent(T[J], "const")))
          ++J;
        if (J < T.size() && T[J].Kind == TokKind::Ident) {
          if (Unordered)
            CS.Unordered.insert(T[J].Text);
          if (PtrKeyed)
            CS.PtrKeyed.insert(T[J].Text);
          if (!Unordered && !PtrKeyed)
            CS.Ordered.insert(T[J].Text);
        }
        continue;
      }

      // AliasName VarName
      if ((UnorderedAliases.count(T[I].Text) ||
           PtrKeyedAliases.count(T[I].Text)) &&
          T[I + 1].Kind == TokKind::Ident && I + 2 < T.size() &&
          (isPunct(T[I + 2], ";") || isPunct(T[I + 2], "=") ||
           isPunct(T[I + 2], "{"))) {
        if (UnorderedAliases.count(T[I].Text))
          CS.Unordered.insert(T[I + 1].Text);
        if (PtrKeyedAliases.count(T[I].Text))
          CS.PtrKeyed.insert(T[I + 1].Text);
        continue;
      }

      // InplaceFunction<...> Name
      if (T[I].Text == "InplaceFunction" && isPunct(T[I + 1], "<")) {
        size_t Close = matchForward(T, I + 1);
        if (Close + 1 < T.size() && T[Close + 1].Kind == TokKind::Ident)
          CS.Inplace.insert(T[Close + 1].Text);
      }
    }
    return CS;
  }

  //===--------------------------------------------------------------------===
  // Rule: unordered-iteration / pointer-identity (iteration half)
  //===--------------------------------------------------------------------===

  /// True when tokens [Begin, End) contain a member at(...)/after(...)
  /// call whose arguments include a lambda literal — scheduling work from
  /// the current iteration order.
  static bool hasScheduledLambda(const std::vector<Token> &T, size_t Begin,
                                 size_t End) {
    for (size_t I = Begin; I + 1 < End; ++I) {
      if (!(isIdent(T[I], "at") || isIdent(T[I], "after")))
        continue;
      if (I == 0 || !(isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")))
        continue;
      if (!isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      for (size_t J = I + 2; J < Close && J < T.size(); ++J)
        if (isLambdaIntroducer(T, J))
          return true;
    }
    return false;
  }

  /// Classifies the loop body [Begin, End): returns a non-empty sink
  /// description when the body reaches output directly; fills
  /// \p Accumulators with containers the body appends to.
  static std::string directSink(const std::vector<Token> &T, size_t Begin,
                                size_t End,
                                std::set<std::string> &Accumulators) {
    static const std::set<std::string> CallSinks = {
        "printf",     "fprintf", "snprintf",  "sprintf", "format",
        "addRow",     "traceBegin", "traceStamp", "stamp", "beginOp",
        "finishOp"};
    std::string Sink;
    for (size_t I = Begin; I < End && I < T.size(); ++I) {
      if (Sink.empty() && isPunct(T[I], "<<"))
        Sink = "streams output ('<<')";
      if (T[I].Kind == TokKind::Ident && I + 1 < T.size() &&
          isPunct(T[I + 1], "(")) {
        if (Sink.empty() && CallSinks.count(T[I].Text))
          Sink = "calls " + T[I].Text + "()";
        if ((T[I].Text == "push_back" || T[I].Text == "emplace_back") &&
            I >= 2 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")) &&
            T[I - 2].Kind == TokKind::Ident)
          Accumulators.insert(T[I - 2].Text);
      }
    }
    if (Sink.empty() && hasScheduledLambda(T, Begin, End))
      Sink = "schedules callbacks (at/after)";
    return Sink;
  }

  /// True when some std::sort after the loop (still inside the enclosing
  /// scope) sorts one of \p Accumulators — the sanctioned
  /// accumulate-then-sort spelling (e.g. HashDirectory::list).
  static bool sortedAfter(const std::vector<Token> &T, size_t After,
                          int EnclosingDepth,
                          const std::set<std::string> &Accumulators) {
    for (size_t I = After; I < T.size(); ++I) {
      if (T[I].BraceDepth < EnclosingDepth)
        break;
      if (!isIdent(T[I], "sort") || I + 1 >= T.size() ||
          !isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      for (size_t J = I + 2; J < Close && J < T.size(); ++J)
        if (T[J].Kind == TokKind::Ident && Accumulators.count(T[J].Text))
          return true;
    }
    return false;
  }

  void checkLoops(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isIdent(T[I], "for") || !isPunct(T[I + 1], "("))
        continue;
      size_t HeadClose = matchForward(T, I + 1);
      if (HeadClose >= T.size())
        continue;

      // What does the loop iterate? Range-for: the expression after the
      // top-level ':'. Iterator-for: a `Var.begin()` in the header.
      std::string UnorderedVar, PtrVar;
      size_t Colon = HeadClose;
      for (size_t J = I + 2; J < HeadClose; ++J)
        if (isPunct(T[J], ":") && T[J].ParenDepth == T[I + 2].ParenDepth) {
          Colon = J;
          break;
        }
      if (Colon < HeadClose) {
        // Only a plain variable (possibly *deref or object.member chain)
        // counts; a call in the range expression may already return a
        // sorted copy.
        bool HasCall = false;
        for (size_t J = Colon + 1; J < HeadClose; ++J) {
          if (isPunct(T[J], "("))
            HasCall = true;
          if (T[J].Kind == TokKind::Ident) {
            if (UnorderedVars.count(T[J].Text))
              UnorderedVar = T[J].Text;
            if (PtrKeyedVars.count(T[J].Text))
              PtrVar = T[J].Text;
          }
        }
        if (HasCall)
          UnorderedVar = PtrVar = "";
      } else {
        for (size_t J = I + 2; J + 2 < HeadClose; ++J)
          if (T[J].Kind == TokKind::Ident && isPunct(T[J + 1], ".") &&
              isIdent(T[J + 2], "begin")) {
            if (UnorderedVars.count(T[J].Text))
              UnorderedVar = T[J].Text;
            if (PtrKeyedVars.count(T[J].Text))
              PtrVar = T[J].Text;
          }
      }
      if (UnorderedVar.empty() && PtrVar.empty())
        continue;

      // Body extent: a braced block, or a single statement to the ';'.
      size_t BodyBegin = HeadClose + 1, BodyEnd;
      if (BodyBegin < T.size() && isPunct(T[BodyBegin], "{")) {
        BodyEnd = matchForward(T, BodyBegin);
        ++BodyBegin;
      } else {
        BodyEnd = BodyBegin;
        while (BodyEnd < T.size() && !isPunct(T[BodyEnd], ";"))
          ++BodyEnd;
      }

      // Iterating a pointer-keyed container is address order; no sink or
      // sort can make it deterministic, so it is flagged outright.
      if (!PtrVar.empty()) {
        emit(F, T[I].Line, "pointer-identity",
             "iteration over pointer-keyed container '" + PtrVar +
                 "' visits elements in address order, which differs "
                 "between runs; key by a stable id or iterate a "
                 "deterministic sequence");
        continue;
      }

      std::set<std::string> Accumulators;
      std::string Sink = directSink(T, BodyBegin, BodyEnd, Accumulators);
      if (Sink.empty() && !Accumulators.empty() &&
          !sortedAfter(T, BodyEnd + 1, T[I].BraceDepth, Accumulators))
        Sink = "collects into " + *Accumulators.begin() +
               " without a later sort";
      if (!Sink.empty())
        emit(F, T[I].Line, "unordered-iteration",
             "loop over unordered container '" + UnorderedVar + "' " + Sink +
                 "; hash order is not deterministic across runs — iterate "
                 "sorted keys or sort before emitting");
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: pointer-identity (formatting half)
  //===--------------------------------------------------------------------===

  void checkPointerFormatting(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I < T.size(); ++I) {
      // Literal split so this source line does not flag itself.
      if (T[I].Kind == TokKind::String &&
          T[I].Text.find("%"
                         "p") != std::string::npos)
        emit(F, T[I].Line, "pointer-identity",
             "format string prints a pointer value (%"
             "p); addresses differ between runs — print a stable id "
             "instead");

      if (isPunct(T[I], "<<") && I + 2 < T.size() && isPunct(T[I + 1], "&") &&
          T[I + 2].Kind == TokKind::Ident)
        emit(F, T[I].Line, "pointer-identity",
             "streaming the address of '" + T[I + 2].Text +
                 "'; addresses differ between runs");

      // Only a *streamed* void-pointer cast is formatting; the same cast
      // feeding placement new or a comparison is fine.
      if (isPunct(T[I], "<<") && I + 5 < T.size() &&
          isIdent(T[I + 1], "static_cast") && isPunct(T[I + 2], "<") &&
          isIdent(T[I + 3], "void") && isPunct(T[I + 4], "*") &&
          isPunct(T[I + 5], ">"))
        emit(F, T[I].Line, "pointer-identity",
             "streaming static_cast<void *> formats a pointer value; "
             "addresses differ between runs");

      if (isIdent(T[I], "reinterpret_cast") && I + 2 < T.size() &&
          isPunct(T[I + 1], "<") &&
          (isIdent(T[I + 2], "uintptr_t") || isIdent(T[I + 2], "intptr_t")))
        emit(F, T[I].Line, "pointer-identity",
             "reinterpret_cast of a pointer to an integer bakes an address "
             "into a value; addresses differ between runs");

      if (isIdent(T[I], "hash") && I + 1 < T.size() &&
          isPunct(T[I + 1], "<") && firstArgIsPointer(T, I + 1))
        emit(F, T[I].Line, "pointer-identity",
             "std::hash over a pointer type hashes the address; hash by a "
             "stable id instead");
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: callback-lifetime
  //===--------------------------------------------------------------------===

  /// Appends capture descriptions that take the address of (or a
  /// reference to) a frame-local name: `[&x]` and `[p = &x]`. `[this]`,
  /// by-value captures and the bare `[&]` default are not reported ([&]
  /// without names gives the reviewer nothing to check; the named forms
  /// are where dangles hide).
  static void riskyCaptures(const std::vector<Token> &T, size_t Open,
                            size_t Close, std::vector<std::string> &Risky) {
    for (size_t I = Open + 1; I + 1 < Close; ++I) {
      if (isPunct(T[I], "&") && !isPunct(T[I - 1], "=") &&
          T[I + 1].Kind == TokKind::Ident && I + 2 <= Close &&
          (isPunct(T[I + 2], ",") || isPunct(T[I + 2], "]")))
        Risky.push_back("&" + T[I + 1].Text);
      if (T[I].Kind == TokKind::Ident && isPunct(T[I + 1], "=") &&
          I + 2 < Close && isPunct(T[I + 2], "&"))
        Risky.push_back(T[I].Text + " = &...");
    }
  }

  void checkCallbackLifetime(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      // Scheduler::at/after(...) — the callback runs at a later virtual
      // time, far outside the current frame.
      bool Scheduled =
          (isIdent(T[I], "at") || isIdent(T[I], "after")) && I > 0 &&
          (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")) &&
          isPunct(T[I + 1], "(");
      // Stores into an InplaceFunction-typed variable or member — the
      // wrapper can be invoked long after the assigning frame returned.
      bool Stored = T[I].Kind == TokKind::Ident &&
                    InplaceVars.count(T[I].Text) && isPunct(T[I + 1], "=") &&
                    I + 2 < T.size() && isLambdaIntroducer(T, I + 2);
      if (!Scheduled && !Stored)
        continue;

      size_t SearchEnd;
      size_t SearchBegin;
      if (Scheduled) {
        SearchBegin = I + 2;
        SearchEnd = matchForward(T, I + 1);
      } else {
        SearchBegin = I + 2;
        SearchEnd = I + 3; // just the introducer
      }
      for (size_t J = SearchBegin; J < SearchEnd && J < T.size(); ++J) {
        if (!isLambdaIntroducer(T, J))
          continue;
        size_t CaptClose = matchForward(T, J);
        if (CaptClose >= T.size())
          continue;
        std::vector<std::string> Risky;
        riskyCaptures(T, J, CaptClose, Risky);
        for (const std::string &Cap : Risky) {
          std::string Where = Scheduled
                                  ? "handed to " + T[I].Text + "()"
                                  : "stored in InplaceFunction '" +
                                        T[I].Text + "'";
          emit(F, T[J].Line, "callback-lifetime",
               "lambda " + Where + " captures [" + Cap +
                   "]; the callback can outlive the capturing frame — "
                   "capture by value or capture an owner that outlives "
                   "the schedule");
        }
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: discarded-error / nodiscard-annotation
  //===--------------------------------------------------------------------===

  /// Collects names of functions declared in src/ with an FsError or
  /// MetaReply return type, so call sites anywhere can be checked without
  /// hand-maintaining a list.
  void harvestErrorFunctions() {
    for (const SourceFile &F : Files) {
      if (!startsWith(F.RelPath, "src/"))
        continue;
      const std::vector<Token> &T = F.Toks.Tokens;
      for (size_t I = 0; I + 2 < T.size(); ++I) {
        if (!(isIdent(T[I], "FsError") || isIdent(T[I], "MetaReply")))
          continue;
        if (T[I].ParenDepth != 0)
          continue; // parameter, not return type
        if (T[I + 1].Kind == TokKind::Ident && isPunct(T[I + 2], "("))
          ErrorFns.insert(T[I + 1].Text);
      }
    }
  }

  /// Walks back from the member-chain head of the call whose callee name
  /// is at \p NameIdx: over `obj.`, `obj->`, `ns::` and balanced closers,
  /// returning the index of the token *before* the whole call expression
  /// (npos at file start).
  static size_t beforeChainHead(const std::vector<Token> &T, size_t NameIdx) {
    size_t J = NameIdx;
    while (J > 0) {
      const Token &P = T[J - 1];
      if (isPunct(P, ".") || isPunct(P, "->") || isPunct(P, "::")) {
        if (J < 2)
          return std::string::npos;
        const Token &Obj = T[J - 2];
        if (Obj.Kind == TokKind::Ident) {
          J -= 2;
          continue;
        }
        if (isPunct(Obj, ")") || isPunct(Obj, "]")) {
          size_t Open = matchBackward(T, J - 2);
          if (Open == std::string::npos)
            return std::string::npos;
          J = Open;
          // A preceding identifier (callee / array name) belongs to the
          // chain too: a(b)[c].f() …
          if (J > 0 && T[J - 1].Kind == TokKind::Ident)
            --J;
          continue;
        }
        return std::string::npos;
      }
      break;
    }
    return J == 0 ? std::string::npos : J - 1;
  }

  void checkDiscardedErrors(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident || !ErrorFns.count(T[I].Text) ||
          !isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      if (Close + 1 >= T.size() || !isPunct(T[Close + 1], ";"))
        continue; // result feeds an expression
      size_t Before = beforeChainHead(T, I);
      if (Before == std::string::npos)
        continue;
      const Token &P = T[Before];
      bool Discarded = false;
      if (P.Kind == TokKind::Punct &&
          (P.Text == ";" || P.Text == "{" || P.Text == "}" || P.Text == ":"))
        Discarded = true;
      else if (isIdent(P, "else") || isIdent(P, "do"))
        Discarded = true;
      else if (isPunct(P, ")")) {
        // `(void)call();` is the sanctioned explicit discard; any other
        // close-paren here is a control-statement header (if/for/while)
        // followed by a discarded call statement.
        size_t Open = matchBackward(T, Before);
        bool VoidCast = Open != std::string::npos && Open + 2 == Before &&
                        isIdent(T[Open + 1], "void");
        Discarded = !VoidCast;
      }
      if (!Discarded)
        continue;
      emit(F, T[I].Line, "discarded-error",
           "result of '" + T[I].Text +
               "()' (FsError/MetaReply) is discarded; check it or cast to "
               "(void) with a comment");
    }
  }

  void checkNodiscardAnnotations(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 2 < T.size(); ++I) {
      if (!(isIdent(T[I], "FsError") || isIdent(T[I], "MetaReply")))
        continue;
      if (T[I].ParenDepth != 0 || T[I].BraceDepth > 2)
        continue;
      if (T[I + 1].Kind != TokKind::Ident || !isPunct(T[I + 2], "("))
        continue;
      // Scan back over the declaration's specifiers for [[nodiscard]].
      bool Annotated = false;
      for (size_t J = I; J-- > 0;) {
        const Token &P = T[J];
        if (P.Kind == TokKind::Punct &&
            (P.Text == ";" || P.Text == "{" || P.Text == "}" ||
             P.Text == ":"))
          break;
        if (isIdent(P, "nodiscard")) {
          Annotated = true;
          break;
        }
      }
      if (!Annotated)
        emit(F, T[I].Line, "nodiscard-annotation",
             "'" + T[I + 1].Text + "' returns " + T[I].Text +
                 " but is not declared [[nodiscard]]; annotate it so the "
                 "compiler backs the discarded-error rule");
    }
  }

  const std::vector<SourceFile> &Files;
  std::vector<Finding> &Out;
  std::set<std::string> ErrorFns;
  std::set<std::string> UnorderedVars, PtrKeyedVars, InplaceVars;
  const std::string Empty;
};

} // namespace

std::vector<Finding> dmb::analyze::analyzeSources(
    const std::vector<std::pair<std::string, std::string>> &Inputs) {
  std::vector<SourceFile> Files;
  Files.reserve(Inputs.size());
  for (const auto &[Rel, Content] : Inputs) {
    SourceFile F;
    F.RelPath = Rel;
    F.Content = Content;
    F.Toks = tokenize(Content);
    F.RawLines = splitLines(Content);
    Files.push_back(std::move(F));
  }
  std::vector<Finding> Out;
  RuleEngine(Files, Out).run();
  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    if (A.File != B.File)
      return A.File < B.File;
    if (A.Line != B.Line)
      return A.Line < B.Line;
    if (A.Rule != B.Rule)
      return A.Rule < B.Rule;
    return A.Message < B.Message;
  });
  return Out;
}

std::vector<Finding> dmb::analyze::analyzeTree(const std::string &Root,
                                               size_t *FilesChecked) {
  std::vector<std::pair<std::string, std::string>> Inputs;
  for (const std::string &Rel :
       collectSourceFiles(Root, {"src", "tests", "bench", "tools"})) {
    std::string Content;
    if (readFile(Root + "/" + Rel, Content))
      Inputs.push_back({Rel, std::move(Content)});
  }
  if (FilesChecked)
    *FilesChecked = Inputs.size();
  return analyzeSources(Inputs);
}

const std::vector<std::string> &dmb::analyze::analyzeRuleNames() {
  static const std::vector<std::string> Names = {
      "unordered-iteration", "pointer-identity",  "callback-lifetime",
      "discarded-error",     "nodiscard-annotation", "layering",
      "include-cycle",       "unused-include"};
  return Names;
}
