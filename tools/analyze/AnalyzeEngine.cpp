//===- tools/analyze/AnalyzeEngine.cpp ------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/AnalyzeEngine.h"
#include "analyze/CallGraph.h"
#include "analyze/IncludeGraph.h"
#include "analyze/SymbolTable.h"
#include "analyze/Tokenizer.h"
#include <algorithm>
#include <map>
#include <set>
#include <utility>

using namespace dmb;
using namespace dmb::analyze;

namespace {

const char *ToolName = "dmeta-analyze";

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

bool endsWith(const std::string &S, const char *Suffix) {
  std::string Suf(Suffix);
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

/// Rules about values that must not differ across identical runs apply to
/// everything whose output lands in results, traces or schedules.
bool determinismScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/") || startsWith(RelPath, "bench/") ||
         startsWith(RelPath, "tools/");
}

/// Callback-lifetime applies where a scheduled callback can outlive the
/// frame that created it. tests/ and bench/ drive the scheduler to
/// completion inside the capturing frame, so they are exempt.
bool lifetimeScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/") || startsWith(RelPath, "tools/");
}

bool isPunct(const Token &T, const char *Text) {
  return T.Kind == TokKind::Punct && T.Text == Text;
}

bool isIdent(const Token &T, const char *Text) {
  return T.Kind == TokKind::Ident && T.Text == Text;
}

/// Index of the token matching the closer at \p CloseIdx, walking
/// backwards ( ')' -> '(', ']' -> '[' ), or npos when unbalanced.
size_t matchBackward(const std::vector<Token> &T, size_t CloseIdx) {
  const std::string &Close = T[CloseIdx].Text;
  std::string Open = Close == ")" ? "(" : Close == "]" ? "[" : "{";
  int Depth = 0;
  for (size_t I = CloseIdx + 1; I-- > 0;) {
    if (T[I].Kind != TokKind::Punct)
      continue;
    if (T[I].Text == Close)
      ++Depth;
    else if (T[I].Text == Open && --Depth == 0)
      return I;
  }
  return std::string::npos;
}

/// True when the '[' at \p I opens a lambda capture list rather than a
/// subscript or attribute: it follows a token that can only precede an
/// expression, not a value.
bool isLambdaIntroducer(const std::vector<Token> &T, size_t I) {
  if (!isPunct(T[I], "["))
    return false;
  if (I == 0)
    return false;
  const Token &P = T[I - 1];
  if (P.Kind == TokKind::Punct)
    return P.Text == "(" || P.Text == "," || P.Text == "=" || P.Text == "{";
  return isIdent(P, "return");
}

/// The engine proper: one instance per analyzeSources call, shared state
/// is the parsed files and the harvested error-returning function names.
class RuleEngine {
public:
  RuleEngine(const std::vector<SourceFile> &Files, std::vector<Finding> &Out)
      : Files(Files), Out(Out) {}

  void run() {
    harvestErrorFunctions();
    ST.build(Files);
    CG.build(ST, Files);
    indexDefinitions();
    harvestWrapperFunctions();
    buildTaintSummaries();
    // Container declarations are tracked per file first, so a .cpp can
    // inherit the members its own header declares (fsck iterating the
    // header-declared inode table must still be seen).
    std::map<std::string, ContainerSets> Tracked;
    for (const SourceFile &F : Files)
      Tracked[F.RelPath] = trackContainers(F);
    for (const SourceFile &F : Files) {
      ContainerSets CS = Tracked[F.RelPath];
      if (endsWith(F.RelPath, ".cpp")) {
        auto HdrIt = Tracked.find(
            F.RelPath.substr(0, F.RelPath.size() - 4) + ".h");
        if (HdrIt != Tracked.end())
          CS.merge(HdrIt->second);
      }
      // A name declared as BOTH an ordered and an unordered container
      // (two classes in one file reusing a member name) is ambiguous;
      // stay silent rather than flag iteration over the ordered one.
      for (const std::string &O : CS.Ordered) {
        CS.Unordered.erase(O);
        CS.PtrKeyed.erase(O);
      }
      UnorderedVars = CS.Unordered;
      PtrKeyedVars = CS.PtrKeyed;
      InplaceVars = CS.Inplace;
      if (determinismScope(F.RelPath)) {
        checkLoops(F);
        checkPointerFormatting(F);
        checkDiscardedErrors(F);
        checkDeterminismTaint(F);
        checkErrorPropagation(F);
      }
      if (lifetimeScope(F.RelPath)) {
        checkCallbackLifetime(F);
        checkBlockingInCallback(F);
        // tests/ and bench/ are exempt for the same reason as
        // callback-lifetime: they assert on final state, so an ignored
        // completion there is a deliberate fixture shape.
        checkSwallowedCompletionErrors(F);
      }
      if (startsWith(F.RelPath, "src/") && endsWith(F.RelPath, ".h"))
        checkNodiscardAnnotations(F);
    }
    IncludeGraph Graph(Files);
    Graph.check(Out);
  }

private:
  void emit(const SourceFile &F, int Line, const std::string &Rule,
            const std::string &Message) {
    const std::string &Raw = Line >= 1 &&
                                     static_cast<size_t>(Line) <=
                                         F.RawLines.size()
                                 ? F.RawLines[Line - 1]
                                 : Empty;
    if (allowedOnLine(Raw, ToolName, Rule))
      return;
    Out.push_back({F.RelPath, Line, Rule, Message});
  }

  //===--------------------------------------------------------------------===
  // Container declaration tracking (per file)
  //===--------------------------------------------------------------------===

  /// True when the first template argument of the '<' at \p Lt spells a
  /// pointer type (`Foo *`), i.e. a '*' appears before the first top-level
  /// comma.
  static bool firstArgIsPointer(const std::vector<Token> &T, size_t Lt) {
    size_t Close = matchForward(T, Lt);
    if (Close >= T.size())
      return false;
    int Angle = 0;
    for (size_t I = Lt + 1; I < Close; ++I) {
      if (isPunct(T[I], "<"))
        ++Angle;
      else if (isPunct(T[I], ">"))
        --Angle;
      else if (Angle == 0 && isPunct(T[I], ","))
        return false;
      else if (Angle == 0 && isPunct(T[I], "*"))
        return true;
    }
    return false;
  }

  /// Variables of interest declared by one file. Ordered holds names of
  /// deterministically-ordered associative containers, used only to
  /// resolve cross-class name collisions.
  struct ContainerSets {
    std::set<std::string> Unordered, PtrKeyed, Inplace, Ordered;
    void merge(const ContainerSets &O) {
      Unordered.insert(O.Unordered.begin(), O.Unordered.end());
      PtrKeyed.insert(O.PtrKeyed.begin(), O.PtrKeyed.end());
      Inplace.insert(O.Inplace.begin(), O.Inplace.end());
      Ordered.insert(O.Ordered.begin(), O.Ordered.end());
    }
  };

  /// Records variables (locals and members) of unordered or pointer-keyed
  /// associative container types, following same-file using-aliases.
  ContainerSets trackContainers(const SourceFile &F) {
    ContainerSets CS;
    std::set<std::string> UnorderedAliases, PtrKeyedAliases;
    const std::vector<Token> &T = F.Toks.Tokens;

    static const std::set<std::string> UnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::set<std::string> AssocTypes = {
        "map",           "set",           "multimap",
        "multiset",      "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset"};

    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident)
        continue;

      // using Alias = std::unordered_map<...>;
      if (T[I].Text == "using" && I + 2 < T.size() &&
          T[I + 1].Kind == TokKind::Ident && isPunct(T[I + 2], "=")) {
        for (size_t J = I + 3; J < T.size() && !isPunct(T[J], ";"); ++J) {
          if (T[J].Kind != TokKind::Ident)
            continue;
          if (UnorderedTypes.count(T[J].Text))
            UnorderedAliases.insert(T[I + 1].Text);
          if (AssocTypes.count(T[J].Text) && J + 1 < T.size() &&
              isPunct(T[J + 1], "<") && firstArgIsPointer(T, J + 1))
            PtrKeyedAliases.insert(T[I + 1].Text);
        }
        continue;
      }

      // TypeName<...> [*&const]* VarName
      bool Unordered = UnorderedTypes.count(T[I].Text) > 0;
      bool Assoc = AssocTypes.count(T[I].Text) > 0;
      if ((Unordered || Assoc) && isPunct(T[I + 1], "<")) {
        bool PtrKeyed = firstArgIsPointer(T, I + 1);
        size_t Close = matchForward(T, I + 1);
        if (Close >= T.size())
          continue;
        size_t J = Close + 1;
        while (J < T.size() &&
               (isPunct(T[J], "*") || isPunct(T[J], "&") ||
                isIdent(T[J], "const")))
          ++J;
        if (J < T.size() && T[J].Kind == TokKind::Ident) {
          if (Unordered)
            CS.Unordered.insert(T[J].Text);
          if (PtrKeyed)
            CS.PtrKeyed.insert(T[J].Text);
          if (!Unordered && !PtrKeyed)
            CS.Ordered.insert(T[J].Text);
        }
        continue;
      }

      // AliasName VarName
      if ((UnorderedAliases.count(T[I].Text) ||
           PtrKeyedAliases.count(T[I].Text)) &&
          T[I + 1].Kind == TokKind::Ident && I + 2 < T.size() &&
          (isPunct(T[I + 2], ";") || isPunct(T[I + 2], "=") ||
           isPunct(T[I + 2], "{"))) {
        if (UnorderedAliases.count(T[I].Text))
          CS.Unordered.insert(T[I + 1].Text);
        if (PtrKeyedAliases.count(T[I].Text))
          CS.PtrKeyed.insert(T[I + 1].Text);
        continue;
      }

      // InplaceFunction<...> Name
      if (T[I].Text == "InplaceFunction" && isPunct(T[I + 1], "<")) {
        size_t Close = matchForward(T, I + 1);
        if (Close + 1 < T.size() && T[Close + 1].Kind == TokKind::Ident)
          CS.Inplace.insert(T[Close + 1].Text);
      }
    }
    return CS;
  }

  //===--------------------------------------------------------------------===
  // Rule: unordered-iteration / pointer-identity (iteration half)
  //===--------------------------------------------------------------------===

  /// True when tokens [Begin, End) contain a member at(...)/after(...)
  /// call whose arguments include a lambda literal — scheduling work from
  /// the current iteration order.
  static bool hasScheduledLambda(const std::vector<Token> &T, size_t Begin,
                                 size_t End) {
    for (size_t I = Begin; I + 1 < End; ++I) {
      if (!(isIdent(T[I], "at") || isIdent(T[I], "after")))
        continue;
      if (I == 0 || !(isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")))
        continue;
      if (!isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      for (size_t J = I + 2; J < Close && J < T.size(); ++J)
        if (isLambdaIntroducer(T, J))
          return true;
    }
    return false;
  }

  /// Classifies the loop body [Begin, End): returns a non-empty sink
  /// description when the body reaches output directly; fills
  /// \p Accumulators with containers the body appends to.
  static std::string directSink(const std::vector<Token> &T, size_t Begin,
                                size_t End,
                                std::set<std::string> &Accumulators) {
    static const std::set<std::string> CallSinks = {
        "printf",     "fprintf", "snprintf",  "sprintf", "format",
        "addRow",     "traceBegin", "traceStamp", "stamp", "beginOp",
        "finishOp"};
    std::string Sink;
    for (size_t I = Begin; I < End && I < T.size(); ++I) {
      if (Sink.empty() && isPunct(T[I], "<<"))
        Sink = "streams output ('<<')";
      if (T[I].Kind == TokKind::Ident && I + 1 < T.size() &&
          isPunct(T[I + 1], "(")) {
        if (Sink.empty() && CallSinks.count(T[I].Text))
          Sink = "calls " + T[I].Text + "()";
        if ((T[I].Text == "push_back" || T[I].Text == "emplace_back") &&
            I >= 2 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")) &&
            T[I - 2].Kind == TokKind::Ident)
          Accumulators.insert(T[I - 2].Text);
      }
    }
    if (Sink.empty() && hasScheduledLambda(T, Begin, End))
      Sink = "schedules callbacks (at/after)";
    return Sink;
  }

  /// True when some std::sort after the loop (still inside the enclosing
  /// scope) sorts one of \p Accumulators — the sanctioned
  /// accumulate-then-sort spelling (e.g. HashDirectory::list).
  static bool sortedAfter(const std::vector<Token> &T, size_t After,
                          int EnclosingDepth,
                          const std::set<std::string> &Accumulators) {
    for (size_t I = After; I < T.size(); ++I) {
      if (T[I].BraceDepth < EnclosingDepth)
        break;
      if (!isIdent(T[I], "sort") || I + 1 >= T.size() ||
          !isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      for (size_t J = I + 2; J < Close && J < T.size(); ++J)
        if (T[J].Kind == TokKind::Ident && Accumulators.count(T[J].Text))
          return true;
    }
    return false;
  }

  void checkLoops(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isIdent(T[I], "for") || !isPunct(T[I + 1], "("))
        continue;
      size_t HeadClose = matchForward(T, I + 1);
      if (HeadClose >= T.size())
        continue;

      // What does the loop iterate? Range-for: the expression after the
      // top-level ':'. Iterator-for: a `Var.begin()` in the header.
      std::string UnorderedVar, PtrVar;
      size_t Colon = HeadClose;
      for (size_t J = I + 2; J < HeadClose; ++J)
        if (isPunct(T[J], ":") && T[J].ParenDepth == T[I + 2].ParenDepth) {
          Colon = J;
          break;
        }
      if (Colon < HeadClose) {
        // Only a plain variable (possibly *deref or object.member chain)
        // counts; a call in the range expression may already return a
        // sorted copy.
        bool HasCall = false;
        for (size_t J = Colon + 1; J < HeadClose; ++J) {
          if (isPunct(T[J], "("))
            HasCall = true;
          if (T[J].Kind == TokKind::Ident) {
            if (UnorderedVars.count(T[J].Text))
              UnorderedVar = T[J].Text;
            if (PtrKeyedVars.count(T[J].Text))
              PtrVar = T[J].Text;
          }
        }
        if (HasCall)
          UnorderedVar = PtrVar = "";
      } else {
        for (size_t J = I + 2; J + 2 < HeadClose; ++J)
          if (T[J].Kind == TokKind::Ident && isPunct(T[J + 1], ".") &&
              isIdent(T[J + 2], "begin")) {
            if (UnorderedVars.count(T[J].Text))
              UnorderedVar = T[J].Text;
            if (PtrKeyedVars.count(T[J].Text))
              PtrVar = T[J].Text;
          }
      }
      if (UnorderedVar.empty() && PtrVar.empty())
        continue;

      // Body extent: a braced block, or a single statement to the ';'.
      size_t BodyBegin = HeadClose + 1, BodyEnd;
      if (BodyBegin < T.size() && isPunct(T[BodyBegin], "{")) {
        BodyEnd = matchForward(T, BodyBegin);
        ++BodyBegin;
      } else {
        BodyEnd = BodyBegin;
        while (BodyEnd < T.size() && !isPunct(T[BodyEnd], ";"))
          ++BodyEnd;
      }

      // Iterating a pointer-keyed container is address order; no sink or
      // sort can make it deterministic, so it is flagged outright.
      if (!PtrVar.empty()) {
        emit(F, T[I].Line, "pointer-identity",
             "iteration over pointer-keyed container '" + PtrVar +
                 "' visits elements in address order, which differs "
                 "between runs; key by a stable id or iterate a "
                 "deterministic sequence");
        continue;
      }

      std::set<std::string> Accumulators;
      std::string Sink = directSink(T, BodyBegin, BodyEnd, Accumulators);
      if (Sink.empty() && !Accumulators.empty() &&
          !sortedAfter(T, BodyEnd + 1, T[I].BraceDepth, Accumulators))
        Sink = "collects into " + *Accumulators.begin() +
               " without a later sort";
      if (!Sink.empty())
        emit(F, T[I].Line, "unordered-iteration",
             "loop over unordered container '" + UnorderedVar + "' " + Sink +
                 "; hash order is not deterministic across runs — iterate "
                 "sorted keys or sort before emitting");
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: pointer-identity (formatting half)
  //===--------------------------------------------------------------------===

  void checkPointerFormatting(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I < T.size(); ++I) {
      // Literal split so this source line does not flag itself.
      if (T[I].Kind == TokKind::String &&
          T[I].Text.find("%"
                         "p") != std::string::npos)
        emit(F, T[I].Line, "pointer-identity",
             "format string prints a pointer value (%"
             "p); addresses differ between runs — print a stable id "
             "instead");

      if (isPunct(T[I], "<<") && I + 2 < T.size() && isPunct(T[I + 1], "&") &&
          T[I + 2].Kind == TokKind::Ident)
        emit(F, T[I].Line, "pointer-identity",
             "streaming the address of '" + T[I + 2].Text +
                 "'; addresses differ between runs");

      // Only a *streamed* void-pointer cast is formatting; the same cast
      // feeding placement new or a comparison is fine.
      if (isPunct(T[I], "<<") && I + 5 < T.size() &&
          isIdent(T[I + 1], "static_cast") && isPunct(T[I + 2], "<") &&
          isIdent(T[I + 3], "void") && isPunct(T[I + 4], "*") &&
          isPunct(T[I + 5], ">"))
        emit(F, T[I].Line, "pointer-identity",
             "streaming static_cast<void *> formats a pointer value; "
             "addresses differ between runs");

      if (isIdent(T[I], "reinterpret_cast") && I + 2 < T.size() &&
          isPunct(T[I + 1], "<") &&
          (isIdent(T[I + 2], "uintptr_t") || isIdent(T[I + 2], "intptr_t")))
        emit(F, T[I].Line, "pointer-identity",
             "reinterpret_cast of a pointer to an integer bakes an address "
             "into a value; addresses differ between runs");

      if (isIdent(T[I], "hash") && I + 1 < T.size() &&
          isPunct(T[I + 1], "<") && firstArgIsPointer(T, I + 1))
        emit(F, T[I].Line, "pointer-identity",
             "std::hash over a pointer type hashes the address; hash by a "
             "stable id instead");
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: callback-lifetime
  //===--------------------------------------------------------------------===

  /// Appends capture descriptions that take the address of (or a
  /// reference to) a frame-local name: `[&x]` and `[p = &x]`. `[this]`,
  /// by-value captures and the bare `[&]` default are not reported ([&]
  /// without names gives the reviewer nothing to check; the named forms
  /// are where dangles hide).
  static void riskyCaptures(const std::vector<Token> &T, size_t Open,
                            size_t Close, std::vector<std::string> &Risky) {
    for (size_t I = Open + 1; I + 1 < Close; ++I) {
      if (isPunct(T[I], "&") && !isPunct(T[I - 1], "=") &&
          T[I + 1].Kind == TokKind::Ident && I + 2 <= Close &&
          (isPunct(T[I + 2], ",") || isPunct(T[I + 2], "]")))
        Risky.push_back("&" + T[I + 1].Text);
      if (T[I].Kind == TokKind::Ident && isPunct(T[I + 1], "=") &&
          I + 2 < Close && isPunct(T[I + 2], "&"))
        Risky.push_back(T[I].Text + " = &...");
    }
  }

  void checkCallbackLifetime(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      // Scheduler::at/after(...) — the callback runs at a later virtual
      // time, far outside the current frame.
      bool Scheduled =
          (isIdent(T[I], "at") || isIdent(T[I], "after")) && I > 0 &&
          (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")) &&
          isPunct(T[I + 1], "(");
      // Stores into an InplaceFunction-typed variable or member — the
      // wrapper can be invoked long after the assigning frame returned.
      bool Stored = T[I].Kind == TokKind::Ident &&
                    InplaceVars.count(T[I].Text) && isPunct(T[I + 1], "=") &&
                    I + 2 < T.size() && isLambdaIntroducer(T, I + 2);
      if (!Scheduled && !Stored)
        continue;

      size_t SearchEnd;
      size_t SearchBegin;
      if (Scheduled) {
        SearchBegin = I + 2;
        SearchEnd = matchForward(T, I + 1);
      } else {
        SearchBegin = I + 2;
        SearchEnd = I + 3; // just the introducer
      }
      for (size_t J = SearchBegin; J < SearchEnd && J < T.size(); ++J) {
        if (!isLambdaIntroducer(T, J))
          continue;
        size_t CaptClose = matchForward(T, J);
        if (CaptClose >= T.size())
          continue;
        std::vector<std::string> Risky;
        riskyCaptures(T, J, CaptClose, Risky);
        for (const std::string &Cap : Risky) {
          std::string Where = Scheduled
                                  ? "handed to " + T[I].Text + "()"
                                  : "stored in InplaceFunction '" +
                                        T[I].Text + "'";
          emit(F, T[J].Line, "callback-lifetime",
               "lambda " + Where + " captures [" + Cap +
                   "]; the callback can outlive the capturing frame — "
                   "capture by value or capture an owner that outlives "
                   "the schedule");
        }
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: discarded-error / nodiscard-annotation
  //===--------------------------------------------------------------------===

  /// Collects names of functions declared in src/ with an FsError or
  /// MetaReply return type, so call sites anywhere can be checked without
  /// hand-maintaining a list.
  void harvestErrorFunctions() {
    for (const SourceFile &F : Files) {
      if (!startsWith(F.RelPath, "src/"))
        continue;
      const std::vector<Token> &T = F.Toks.Tokens;
      for (size_t I = 0; I + 2 < T.size(); ++I) {
        if (!(isIdent(T[I], "FsError") || isIdent(T[I], "MetaReply")))
          continue;
        if (T[I].ParenDepth != 0)
          continue; // parameter, not return type
        if (T[I + 1].Kind == TokKind::Ident && isPunct(T[I + 2], "("))
          ErrorFns.insert(T[I + 1].Text);
      }
    }
  }

  /// Walks back from the member-chain head of the call whose callee name
  /// is at \p NameIdx: over `obj.`, `obj->`, `ns::` and balanced closers,
  /// returning the index of the token *before* the whole call expression
  /// (npos at file start).
  static size_t beforeChainHead(const std::vector<Token> &T, size_t NameIdx) {
    size_t J = NameIdx;
    while (J > 0) {
      const Token &P = T[J - 1];
      if (isPunct(P, ".") || isPunct(P, "->") || isPunct(P, "::")) {
        if (J < 2)
          return std::string::npos;
        const Token &Obj = T[J - 2];
        if (Obj.Kind == TokKind::Ident) {
          J -= 2;
          continue;
        }
        if (isPunct(Obj, ")") || isPunct(Obj, "]")) {
          size_t Open = matchBackward(T, J - 2);
          if (Open == std::string::npos)
            return std::string::npos;
          J = Open;
          // A preceding identifier (callee / array name) belongs to the
          // chain too: a(b)[c].f() …
          if (J > 0 && T[J - 1].Kind == TokKind::Ident)
            --J;
          continue;
        }
        return std::string::npos;
      }
      break;
    }
    return J == 0 ? std::string::npos : J - 1;
  }

  void checkDiscardedErrors(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident || !ErrorFns.count(T[I].Text) ||
          !isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      if (Close + 1 >= T.size() || !isPunct(T[Close + 1], ";"))
        continue; // result feeds an expression
      size_t Before = beforeChainHead(T, I);
      if (Before == std::string::npos)
        continue;
      const Token &P = T[Before];
      bool Discarded = false;
      if (P.Kind == TokKind::Punct &&
          (P.Text == ";" || P.Text == "{" || P.Text == "}" || P.Text == ":"))
        Discarded = true;
      else if (isIdent(P, "else") || isIdent(P, "do"))
        Discarded = true;
      else if (isPunct(P, ")")) {
        // `(void)call();` is the sanctioned explicit discard; any other
        // close-paren here is a control-statement header (if/for/while)
        // followed by a discarded call statement.
        size_t Open = matchBackward(T, Before);
        bool VoidCast = Open != std::string::npos && Open + 2 == Before &&
                        isIdent(T[Open + 1], "void");
        Discarded = !VoidCast;
      }
      if (!Discarded)
        continue;
      emit(F, T[I].Line, "discarded-error",
           "result of '" + T[I].Text +
               "()' (FsError/MetaReply) is discarded; check it or cast to "
               "(void) with a comment");
    }
  }

  void checkNodiscardAnnotations(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 2 < T.size(); ++I) {
      if (!(isIdent(T[I], "FsError") || isIdent(T[I], "MetaReply")))
        continue;
      if (T[I].ParenDepth != 0 || T[I].BraceDepth > 2)
        continue;
      if (T[I + 1].Kind != TokKind::Ident || !isPunct(T[I + 2], "("))
        continue;
      // Scan back over the declaration's specifiers for [[nodiscard]].
      bool Annotated = false;
      for (size_t J = I; J-- > 0;) {
        const Token &P = T[J];
        if (P.Kind == TokKind::Punct &&
            (P.Text == ";" || P.Text == "{" || P.Text == "}" ||
             P.Text == ":"))
          break;
        if (isIdent(P, "nodiscard")) {
          Annotated = true;
          break;
        }
      }
      if (!Annotated)
        emit(F, T[I].Line, "nodiscard-annotation",
             "'" + T[I + 1].Text + "' returns " + T[I].Text +
                 " but is not declared [[nodiscard]]; annotate it so the "
                 "compiler backs the discarded-error rule");
    }
  }

  //===--------------------------------------------------------------------===
  // Interprocedural infrastructure (SymbolTable + CallGraph)
  //===--------------------------------------------------------------------===

  /// Fills DefsByFile and DefCalls: per-definition call sites are
  /// collected once and reused by every interprocedural rule.
  void indexDefinitions() {
    for (size_t I = 0; I < Files.size(); ++I)
      FileIndexOf[Files[I].RelPath] = static_cast<int>(I);
    const std::vector<Symbol> &Syms = ST.symbols();
    for (int D : ST.definitions()) {
      const Symbol &S = Syms[D];
      DefsByFile[S.FileIndex].push_back(D);
      DefCalls[D] = collectCalls(Files[S.FileIndex].Toks.Tokens, S.BodyBegin,
                                 S.BodyEnd, S.ClassName, ST);
    }
  }

  /// Call sites of definition \p D whose name token lies in [Begin, End).
  std::vector<const CallSite *> callsIn(int D, size_t Begin, size_t End) {
    std::vector<const CallSite *> Hits;
    for (const CallSite &CS : DefCalls[D])
      if (CS.NameTok >= Begin && CS.NameTok < End)
        Hits.push_back(&CS);
    return Hits;
  }

  //===--------------------------------------------------------------------===
  // Rule: error-path-propagation
  //===--------------------------------------------------------------------===

  /// Extends the harvested error-returning set through `auto`-returning
  /// wrappers whose body forwards an error call: `auto w() { return
  /// f(...); }` with f in ErrorFns makes w report like an error function.
  /// Runs to a fixpoint so wrappers of wrappers are covered.
  void harvestWrapperFunctions() {
    const std::vector<Symbol> &Syms = ST.symbols();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (int D : ST.definitions()) {
        const Symbol &S = Syms[D];
        if (WrapperOf.count(S.Name) || ErrorFns.count(S.Name))
          continue;
        const std::string &Ret = S.ReturnType;
        bool AutoRet = Ret == "auto" || endsWith(Ret, " auto");
        if (!AutoRet)
          continue;
        const std::vector<Token> &T = Files[S.FileIndex].Toks.Tokens;
        for (size_t I = S.BodyBegin; I + 2 < S.BodyEnd; ++I) {
          if (!isIdent(T[I], "return") || T[I + 1].Kind != TokKind::Ident ||
              !isPunct(T[I + 2], "("))
            continue;
          const std::string &Callee = T[I + 1].Text;
          if (ErrorFns.count(Callee)) {
            WrapperOf[S.Name] = Callee;
            Changed = true;
          } else if (WrapperOf.count(Callee)) {
            WrapperOf[S.Name] = WrapperOf[Callee];
            Changed = true;
          }
        }
      }
    }
  }

  void checkErrorPropagation(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;

    // Half 1: a discarded call of a wrapper discards the wrapped
    // FsError/MetaReply — same statement shapes as discarded-error.
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident || !WrapperOf.count(T[I].Text) ||
          !isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      if (Close + 1 >= T.size() || !isPunct(T[Close + 1], ";"))
        continue;
      size_t Before = beforeChainHead(T, I);
      if (Before == std::string::npos)
        continue;
      const Token &P = T[Before];
      bool Discarded = false;
      if (P.Kind == TokKind::Punct &&
          (P.Text == ";" || P.Text == "{" || P.Text == "}" || P.Text == ":"))
        Discarded = true;
      else if (isIdent(P, "else") || isIdent(P, "do"))
        Discarded = true;
      else if (isPunct(P, ")")) {
        size_t Open = matchBackward(T, Before);
        bool VoidCast = Open != std::string::npos && Open + 2 == Before &&
                        isIdent(T[Open + 1], "void");
        Discarded = !VoidCast;
      }
      if (Discarded)
        emit(F, T[I].Line, "error-path-propagation",
             "result of '" + T[I].Text + "()' forwards the error of '" +
                 WrapperOf.at(T[I].Text) +
                 "()' but is discarded here; check it or cast to (void) "
                 "with a comment");
    }

    // Half 2: an error result stored in a local the function never reads
    // again — the error is swallowed even though the call "used" it.
    auto FIt = FileIndexOf.find(F.RelPath);
    if (FIt == FileIndexOf.end())
      return;
    for (int D : DefsByFile[FIt->second]) {
      const Symbol &S = ST.symbols()[D];
      for (size_t I = S.BodyBegin; I + 2 < S.BodyEnd; ++I) {
        // `FsError E = ...;` / `MetaReply R = ...;` / `auto E = errfn(...`
        std::string Var;
        if ((isIdent(T[I], "FsError") || isIdent(T[I], "MetaReply")) &&
            T[I + 1].Kind == TokKind::Ident && isPunct(T[I + 2], "=")) {
          Var = T[I + 1].Text;
        } else if (isIdent(T[I], "auto") && T[I + 1].Kind == TokKind::Ident &&
                   isPunct(T[I + 2], "=") && I + 3 < S.BodyEnd &&
                   T[I + 3].Kind == TokKind::Ident &&
                   (ErrorFns.count(T[I + 3].Text) ||
                    WrapperOf.count(T[I + 3].Text))) {
          Var = T[I + 1].Text;
        }
        if (Var.empty())
          continue;
        size_t Stmt = I + 3;
        while (Stmt < S.BodyEnd && !isPunct(T[Stmt], ";"))
          ++Stmt;
        bool Read = false;
        for (size_t J = Stmt; J < S.BodyEnd && !Read; ++J)
          if (T[J].Kind == TokKind::Ident && T[J].Text == Var)
            Read = true;
        if (!Read)
          emit(F, T[I].Line, "error-path-propagation",
               "error result stored in '" + Var + "' is never examined in '" +
                   S.Name +
                   "'; the error is silently swallowed — branch on it or "
                   "discard explicitly with (void)");
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: swallowed-completion-error
  //===--------------------------------------------------------------------===

  /// Async submission APIs whose completion callback receives the
  /// operation's MetaReply. With a write-behind queue between the caller
  /// and the server, the reply delivered here is the only place a
  /// deferred op's failure ever surfaces — a completion that names the
  /// reply but never examines or forwards it swallows that error.
  static bool isCompletionApi(const std::string &Name) {
    return Name == "submit" || Name == "enqueue" || Name == "rpc" ||
           Name == "transact" || Name == "process" || Name == "processEager";
  }

  void checkSwallowedCompletionErrors(const SourceFile &F) {
    const std::vector<Token> &T = F.Toks.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident || !isCompletionApi(T[I].Text) ||
          !isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchForward(T, I + 1);
      if (Close >= T.size())
        continue;
      for (size_t J = I + 2; J < Close; ++J) {
        if (!isLambdaIntroducer(T, J))
          continue;
        size_t CapClose = matchForward(T, J);
        if (CapClose >= Close || !isPunct(T[CapClose + 1], "("))
          continue;
        size_t ParClose = matchForward(T, CapClose + 1);
        if (ParClose >= Close)
          continue;
        // An unnamed `(MetaReply)` parameter is the sanctioned explicit
        // discard, like `(void)` on a synchronous call.
        std::string Name;
        for (size_t K = CapClose + 2; K < ParClose; ++K) {
          if (!isIdent(T[K], "MetaReply"))
            continue;
          size_t N = K + 1;
          while (N < ParClose &&
                 (isPunct(T[N], "&") || isPunct(T[N], "&&") ||
                  isIdent(T[N], "const")))
            ++N;
          if (N < ParClose && T[N].Kind == TokKind::Ident)
            Name = T[N].Text;
          break;
        }
        if (Name.empty()) {
          J = CapClose;
          continue;
        }
        size_t BodyOpen = ParClose + 1;
        while (BodyOpen < Close && (T[BodyOpen].Kind == TokKind::Ident ||
                                    isPunct(T[BodyOpen], "->")))
          ++BodyOpen; // mutable / noexcept / trailing return type
        if (BodyOpen >= Close || !isPunct(T[BodyOpen], "{")) {
          J = CapClose;
          continue;
        }
        size_t BodyClose = matchForward(T, BodyOpen);
        bool Examined = false;
        for (size_t K = BodyOpen + 1; K < BodyClose && !Examined; ++K) {
          if (T[K].Kind != TokKind::Ident || T[K].Text != Name)
            continue;
          if (isPunct(T[K + 1], ".")) {
            // A field read examines the error only if it is the error.
            if (isIdent(T[K + 2], "Err") || isIdent(T[K + 2], "ok"))
              Examined = true;
          } else {
            // A bare use forwards or stores the whole reply; whoever
            // receives it owns the error from here.
            Examined = true;
          }
        }
        if (!Examined)
          emit(F, T[J].Line, "swallowed-completion-error",
               "completion of '" + T[I].Text + "()' names its MetaReply '" +
                   Name + "' but never checks " + Name + ".Err/" + Name +
                   ".ok() nor forwards it; the enqueued op's failure is "
                   "silently swallowed — examine it or drop the parameter "
                   "name to discard explicitly");
        J = BodyClose < Close ? BodyClose : CapClose;
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: determinism-taint
  //===--------------------------------------------------------------------===

  /// Returns a description when the token at \p I begins a
  /// nondeterminism source, "" otherwise. Sources on a line carrying a
  /// determinism-taint allow() are dead at the root: nothing derived from
  /// them is tracked.
  std::string taintSourceAt(const SourceFile &F, size_t I) {
    const std::vector<Token> &T = F.Toks.Tokens;
    if (T[I].Kind != TokKind::Ident)
      return "";
    std::string Desc;
    if (T[I].Text == "random_device") {
      Desc = "std::random_device";
    } else if (I + 1 < T.size() && isPunct(T[I + 1], "(")) {
      static const std::set<std::string> Libc = {"rand", "srand", "drand48",
                                                 "gettimeofday", "getpid"};
      if (Libc.count(T[I].Text)) {
        // Plain or std:: call only; members and declarations are not the
        // libc functions.
        bool Plain = I == 0 || (T[I - 1].Kind == TokKind::Punct &&
                                T[I - 1].Text != "." && T[I - 1].Text != "->" &&
                                T[I - 1].Text != "::");
        bool StdQual = I >= 2 && isPunct(T[I - 1], "::") &&
                       isIdent(T[I - 2], "std");
        if (Plain || StdQual)
          Desc = T[I].Text + "()";
      } else if (T[I].Text == "now" && I >= 2 && isPunct(T[I - 1], "::") &&
                 T[I - 2].Kind == TokKind::Ident &&
                 (T[I - 2].Text.find("clock") != std::string::npos ||
                  T[I - 2].Text.find("Clock") != std::string::npos)) {
        Desc = "wall-clock " + T[I - 2].Text + "::now()";
      }
    }
    if (Desc.empty() && isIdent(T[I], "reinterpret_cast") && I + 2 < T.size() &&
        isPunct(T[I + 1], "<") &&
        (isIdent(T[I + 2], "uintptr_t") || isIdent(T[I + 2], "intptr_t")))
      Desc = "pointer-to-integer cast";
    if (Desc.empty() && isIdent(T[I], "hash") && I + 1 < T.size() &&
        isPunct(T[I + 1], "<") && firstArgIsPointer(T, I + 1))
      Desc = "pointer hash";
    if (Desc.empty())
      return "";
    const std::string &Raw =
        T[I].Line >= 1 && static_cast<size_t>(T[I].Line) <= F.RawLines.size()
            ? F.RawLines[T[I].Line - 1]
            : Empty;
    if (allowedOnLine(Raw, ToolName, "determinism-taint"))
      return "";
    return Desc;
  }

  /// Description when tokens [Begin, End) of definition \p D contain a
  /// tainted value: a source, a tainted local, or a call returning taint.
  std::string taintedIn(const SourceFile &F, int D, size_t Begin, size_t End) {
    const std::vector<Token> &T = F.Toks.Tokens;
    const std::set<std::string> &Locals = TaintedLocals[D];
    for (size_t I = Begin; I < End && I < T.size(); ++I) {
      std::string Src = taintSourceAt(F, I);
      if (!Src.empty())
        return Src;
      if (T[I].Kind == TokKind::Ident && Locals.count(T[I].Text))
        return "'" + T[I].Text + "' (" + LocalWhy[D][T[I].Text] + ")";
    }
    for (const CallSite *CS : callsIn(D, Begin, End))
      if (CS->Callee >= 0 && ReturnsTainted.count(CS->Callee))
        return "call of '" + ST.symbols()[CS->Callee].Qualified + "' (" +
               ReturnsTainted.at(CS->Callee) + ")";
    return "";
  }

  /// One fixpoint: function summaries for taint (which locals hold
  /// nondeterministic values, which functions return them) and for sink
  /// reachability (which functions emit to traces/results/output).
  void buildTaintSummaries() {
    const std::vector<Symbol> &Syms = ST.symbols();

    // Sink reachability: textual sinks in the body, then closed over the
    // call graph (a function that calls an emitting function emits).
    static const std::set<std::string> SinkCalls = {
        "printf",     "fprintf",     "snprintf",   "sprintf",  "format",
        "addRow",     "traceBegin",  "traceStamp", "traceStampOn",
        "traceFinish", "stamp",      "beginOp",    "finishOp"};
    for (int D : ST.definitions()) {
      const Symbol &S = Syms[D];
      const std::vector<Token> &T = Files[S.FileIndex].Toks.Tokens;
      bool Sink = false;
      for (size_t I = S.BodyBegin; I < S.BodyEnd && !Sink; ++I)
        if (isPunct(T[I], "<<"))
          Sink = true;
      if (!Sink)
        for (const CallSite &CS : DefCalls[D])
          if (SinkCalls.count(CS.Name)) {
            Sink = true;
            break;
          }
      if (!Sink && hasScheduledLambda(T, S.BodyBegin, S.BodyEnd))
        Sink = true;
      if (Sink)
        SinkReaching.insert(D);
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (int D : ST.definitions()) {
        if (SinkReaching.count(D))
          continue;
        for (int Callee : CG.successors(D))
          if (SinkReaching.count(Callee)) {
            SinkReaching.insert(D);
            Changed = true;
            break;
          }
      }
    }

    // Taint: forward over assignments inside each body, then over return
    // edges to callers, iterated to a fixpoint.
    Changed = true;
    int Rounds = 0;
    while (Changed && ++Rounds <= 10) {
      Changed = false;
      for (int D : ST.definitions()) {
        const Symbol &S = Syms[D];
        const SourceFile &F = Files[S.FileIndex];
        const std::vector<Token> &T = F.Toks.Tokens;
        std::set<std::string> &Locals = TaintedLocals[D];
        for (size_t I = S.BodyBegin; I < S.BodyEnd; ++I) {
          // `random_device Rd;` — an object whose calls produce the
          // nondeterminism: the declared name itself is tainted.
          if (T[I].Kind == TokKind::Ident && I + 1 < S.BodyEnd &&
              T[I + 1].Kind == TokKind::Ident) {
            std::string Src = taintSourceAt(F, I);
            if (!Src.empty() && Locals.insert(T[I + 1].Text).second) {
              LocalWhy[D][T[I + 1].Text] = "from " + Src;
              Changed = true;
            }
            // `Type Var(expr...)` / `Type Var{expr...}` — constructor
            // initialization from a tainted expression.
            if (Src.empty() && I + 2 < S.BodyEnd &&
                (isPunct(T[I + 2], "(") || isPunct(T[I + 2], "{"))) {
              size_t ArgClose = matchForward(T, I + 2);
              if (ArgClose < S.BodyEnd &&
                  !taintedIn(F, D, I + 3, ArgClose).empty() &&
                  Locals.insert(T[I + 1].Text).second) {
                LocalWhy[D][T[I + 1].Text] =
                    "from " + taintedIn(F, D, I + 3, ArgClose);
                Changed = true;
              }
            }
          }
          // `Name = expr` (or a compound assignment) — track Name when
          // expr is tainted.
          static const std::set<std::string> AssignOps = {
              "=",  "+=", "-=", "*=",  "/=",  "%=",
              "|=", "&=", "^=", "<<=", ">>="};
          if (T[I].Kind == TokKind::Punct && AssignOps.count(T[I].Text) &&
              I > S.BodyBegin && T[I - 1].Kind == TokKind::Ident) {
            size_t StmtEnd = I + 1;
            while (StmtEnd < S.BodyEnd &&
                   !(isPunct(T[StmtEnd], ";") &&
                     T[StmtEnd].ParenDepth <= T[I].ParenDepth &&
                     T[StmtEnd].BraceDepth <= T[I].BraceDepth))
              ++StmtEnd;
            std::string Desc = taintedIn(F, D, I + 1, StmtEnd);
            if (!Desc.empty() && Locals.insert(T[I - 1].Text).second) {
              LocalWhy[D][T[I - 1].Text] = "from " + Desc;
              Changed = true;
            }
            I = StmtEnd;
            continue;
          }
          // `return expr` — the function returns taint.
          if (isIdent(T[I], "return") && !ReturnsTainted.count(D)) {
            size_t StmtEnd = I + 1;
            while (StmtEnd < S.BodyEnd &&
                   !(isPunct(T[StmtEnd], ";") &&
                     T[StmtEnd].ParenDepth <= T[I].ParenDepth &&
                     T[StmtEnd].BraceDepth <= T[I].BraceDepth))
              ++StmtEnd;
            std::string Desc = taintedIn(F, D, I + 1, StmtEnd);
            if (!Desc.empty()) {
              ReturnsTainted[D] = Desc;
              Changed = true;
            }
            I = StmtEnd;
          }
        }
      }
    }
  }

  void checkDeterminismTaint(const SourceFile &F) {
    auto FIt = FileIndexOf.find(F.RelPath);
    if (FIt == FileIndexOf.end())
      return;
    static const std::set<std::string> SinkCalls = {
        "printf",     "fprintf",     "snprintf",   "sprintf",  "format",
        "addRow",     "traceBegin",  "traceStamp", "traceStampOn",
        "traceFinish", "stamp",      "beginOp",    "finishOp"};
    const std::vector<Token> &T = F.Toks.Tokens;
    for (int D : DefsByFile[FIt->second]) {
      const Symbol &S = ST.symbols()[D];
      for (const CallSite &CS : DefCalls[D]) {
        size_t Open = CS.NameTok + 1;
        size_t Close = matchForward(T, Open);
        if (Close >= T.size())
          continue;
        if (SinkCalls.count(CS.Name)) {
          std::string Desc = taintedIn(F, D, Open + 1, Close);
          if (!Desc.empty())
            emit(F, T[CS.NameTok].Line, "determinism-taint",
                 "nondeterministic value (" + Desc + ") reaches " + CS.Name +
                     "(); traces and results must be bit-identical across "
                     "runs — derive it from the virtual clock or the seeded "
                     "RNG");
          continue;
        }
        if ((CS.Name == "at" || CS.Name == "after") && CS.IsMember) {
          // Scheduling sink: the callback is the last top-level argument
          // (a lambda literal or a moved function object); everything
          // before the last top-level comma is the schedule-time
          // expression. A single argument is not a scheduling call
          // (e.g. map.at(key)).
          size_t LastComma = 0;
          int Par = 0, Brace = 0, Brack = 0;
          for (size_t J = Open + 1; J < Close; ++J) {
            if (T[J].Kind != TokKind::Punct)
              continue;
            const std::string &X = T[J].Text;
            if (X == "(")
              ++Par;
            else if (X == ")")
              --Par;
            else if (X == "{")
              ++Brace;
            else if (X == "}")
              --Brace;
            else if (X == "[")
              ++Brack;
            else if (X == "]")
              --Brack;
            else if (X == "," && Par == 0 && Brace == 0 && Brack == 0)
              LastComma = J;
          }
          if (LastComma == 0)
            continue;
          std::string Desc = taintedIn(F, D, Open + 1, LastComma);
          if (!Desc.empty())
            emit(F, T[CS.NameTok].Line, "determinism-taint",
                 "nondeterministic value (" + Desc + ") feeds the " + CS.Name +
                     "() schedule time; event order would differ between "
                     "runs");
          continue;
        }
        if (CS.Callee >= 0 && SinkReaching.count(CS.Callee)) {
          std::string Desc = taintedIn(F, D, Open + 1, Close);
          if (!Desc.empty())
            emit(F, T[CS.NameTok].Line, "determinism-taint",
                 "nondeterministic value (" + Desc + ") passed to '" +
                     ST.symbols()[CS.Callee].Qualified +
                     "', which reaches a determinism sink");
        }
      }
      // Streaming emissions inside this body: a tainted value in a `<<`
      // statement lands in benchmark output.
      std::set<int> Reported;
      for (size_t I = S.BodyBegin; I < S.BodyEnd; ++I) {
        if (!isPunct(T[I], "<<"))
          continue;
        size_t B = I;
        while (B > S.BodyBegin && !isPunct(T[B - 1], ";") &&
               !isPunct(T[B - 1], "{") && !isPunct(T[B - 1], "}"))
          --B;
        size_t E = I;
        while (E < S.BodyEnd && !isPunct(T[E], ";"))
          ++E;
        if (!Reported.insert(T[I].Line).second) {
          I = E;
          continue;
        }
        std::string Desc = taintedIn(F, D, B, E);
        if (!Desc.empty())
          emit(F, T[I].Line, "determinism-taint",
               "nondeterministic value (" + Desc +
                   ") is streamed to output; emit a stable value instead");
        I = E;
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Rule: blocking-in-callback
  //===--------------------------------------------------------------------===

  /// Lambda body range [BodyBegin, BodyEnd) for the introducer at \p I,
  /// or (0,0) when the shape is not a full lambda literal.
  static std::pair<size_t, size_t> lambdaBody(const std::vector<Token> &T,
                                              size_t I) {
    size_t CaptClose = matchForward(T, I);
    if (CaptClose >= T.size())
      return {0, 0};
    size_t J = CaptClose + 1;
    if (J < T.size() && isPunct(T[J], "(")) {
      size_t ParClose = matchForward(T, J);
      if (ParClose >= T.size())
        return {0, 0};
      J = ParClose + 1;
    }
    while (J < T.size() &&
           (isIdent(T[J], "mutable") || isIdent(T[J], "noexcept")))
      ++J;
    if (J < T.size() && isPunct(T[J], "->")) {
      ++J;
      while (J < T.size() && !isPunct(T[J], "{"))
        ++J;
    }
    if (J >= T.size() || !isPunct(T[J], "{"))
      return {0, 0};
    size_t Close = matchForward(T, J);
    if (Close >= T.size())
      return {0, 0};
    return {J + 1, Close};
  }

  /// Symbol index for \p Key, or -1; missing keys (fixture trees without
  /// the engine sources) simply disable that target.
  int keySym(const char *Key) { return ST.symbolForKey(Key); }

  void checkBlockingInCallback(const SourceFile &F) {
    auto FIt = FileIndexOf.find(F.RelPath);
    if (FIt == FileIndexOf.end())
      return;
    const std::vector<Token> &T = F.Toks.Tokens;

    std::vector<std::pair<int, std::string>> QuiesForbidden;
    for (const char *K : {"SimMutex::lock", "Resource::request",
                          "Scheduler::at", "Scheduler::after",
                          "Scheduler::run", "Scheduler::runUntil"}) {
      int Sym = keySym(K);
      if (Sym >= 0)
        QuiesForbidden.push_back({Sym, K});
    }
    std::vector<std::pair<int, std::string>> ReentryForbidden;
    for (const char *K : {"Scheduler::run", "Scheduler::runUntil"}) {
      int Sym = keySym(K);
      if (Sym >= 0)
        ReentryForbidden.push_back({Sym, K});
    }
    static const std::set<std::string> QuiesDirect = {
        "lock", "request", "at", "after", "run", "runUntil"};

    for (int D : DefsByFile[FIt->second]) {
      for (const CallSite &CS : DefCalls[D]) {
        bool Quies = CS.Name == "addQuiescenceCheck";
        bool Callback = (CS.Name == "at" || CS.Name == "after") && CS.IsMember;
        if (!Quies && !Callback)
          continue;
        size_t Open = CS.NameTok + 1;
        size_t Close = matchForward(T, Open);
        if (Close >= T.size())
          continue;
        for (size_t J = Open + 1; J < Close; ++J) {
          if (!isLambdaIntroducer(T, J))
            continue;
          auto [LB, LE] = lambdaBody(T, J);
          if (LB == LE)
            continue;
          for (const CallSite *Inner : callsIn(D, LB, LE)) {
            if (Quies && Inner->IsMember && QuiesDirect.count(Inner->Name)) {
              emit(F, T[Inner->NameTok].Line, "blocking-in-callback",
                   "quiescence check calls " + Inner->Name +
                       "(); quiescence checks run between events and must "
                       "be read-only diagnostics");
              continue;
            }
            if (Inner->Callee < 0)
              continue;
            const auto &Forbidden = Quies ? QuiesForbidden : ReentryForbidden;
            std::set<int> Reach = CG.reachableFrom(Inner->Callee);
            for (const auto &[Sym, Key] : Forbidden) {
              if (!Reach.count(Sym))
                continue;
              std::string Ctx =
                  Quies ? "quiescence check"
                        : "callback scheduled via " + CS.Name + "()";
              std::string Tail =
                  Quies ? "quiescence checks run between events and must "
                          "be read-only diagnostics"
                        : "re-entering the scheduler loop from inside an "
                          "event corrupts the schedule";
              emit(F, T[Inner->NameTok].Line, "blocking-in-callback",
                   Ctx + " reaches " + Key + " through '" +
                       ST.symbols()[Inner->Callee].Qualified + "'; " + Tail);
              break;
            }
          }
          J = LE;
        }
      }
    }
  }

  const std::vector<SourceFile> &Files;
  std::vector<Finding> &Out;
  std::set<std::string> ErrorFns;
  std::set<std::string> UnorderedVars, PtrKeyedVars, InplaceVars;
  SymbolTable ST;
  CallGraph CG;
  std::map<int, std::vector<int>> DefsByFile;       ///< FileIndex -> defs
  std::map<std::string, int> FileIndexOf;           ///< RelPath -> FileIndex
  std::map<int, std::vector<CallSite>> DefCalls;    ///< def -> call sites
  std::map<std::string, std::string> WrapperOf;     ///< wrapper -> error fn
  std::map<int, std::string> ReturnsTainted;        ///< def -> source desc
  std::map<int, std::set<std::string>> TaintedLocals;
  std::map<int, std::map<std::string, std::string>> LocalWhy;
  std::set<int> SinkReaching;
  const std::string Empty;
};

} // namespace

std::vector<Finding> dmb::analyze::analyzeSources(
    const std::vector<std::pair<std::string, std::string>> &Inputs) {
  std::vector<SourceFile> Files;
  Files.reserve(Inputs.size());
  for (const auto &[Rel, Content] : Inputs) {
    SourceFile F;
    F.RelPath = Rel;
    F.Content = Content;
    F.Toks = tokenize(Content);
    F.RawLines = splitLines(Content);
    Files.push_back(std::move(F));
  }
  std::vector<Finding> Out;
  RuleEngine(Files, Out).run();
  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    if (A.File != B.File)
      return A.File < B.File;
    if (A.Line != B.Line)
      return A.Line < B.Line;
    if (A.Rule != B.Rule)
      return A.Rule < B.Rule;
    return A.Message < B.Message;
  });
  return Out;
}

std::vector<Finding> dmb::analyze::analyzeTree(const std::string &Root,
                                               size_t *FilesChecked) {
  std::vector<std::pair<std::string, std::string>> Inputs;
  for (const std::string &Rel :
       collectSourceFiles(Root, {"src", "tests", "bench", "tools"})) {
    std::string Content;
    if (readFile(Root + "/" + Rel, Content))
      Inputs.push_back({Rel, std::move(Content)});
  }
  if (FilesChecked)
    *FilesChecked = Inputs.size();
  return analyzeSources(Inputs);
}

bool dmb::analyze::writeCallGraphDot(const std::string &Root,
                                     std::ostream &OS) {
  std::vector<SourceFile> Files;
  for (const std::string &Rel :
       collectSourceFiles(Root, {"src", "tests", "bench", "tools"})) {
    std::string Content;
    if (!readFile(Root + "/" + Rel, Content))
      continue;
    SourceFile F;
    F.RelPath = Rel;
    F.Content = std::move(Content);
    F.Toks = tokenize(F.Content);
    F.RawLines = splitLines(F.Content);
    Files.push_back(std::move(F));
  }
  if (Files.empty())
    return false;
  SymbolTable ST;
  ST.build(Files);
  CallGraph CG;
  CG.build(ST, Files);
  CG.writeDot(OS);
  return true;
}

const std::vector<std::string> &dmb::analyze::analyzeRuleNames() {
  static const std::vector<std::string> Names = {
      "unordered-iteration",  "pointer-identity",
      "callback-lifetime",    "discarded-error",
      "nodiscard-annotation", "determinism-taint",
      "error-path-propagation", "blocking-in-callback",
      "swallowed-completion-error",
      "layering",             "include-cycle",
      "unused-include"};
  return Names;
}
