//===- tools/analyze/AnalyzeEngine.h - Symbol-aware rules -------*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine behind tools/dmeta-analyze: symbol-aware determinism and
/// lifetime rules that the line-level lint (tools/lint) cannot express.
/// It works on the shared token stream (analyze/Tokenizer.h) plus the
/// project include graph (analyze/IncludeGraph.h).
///
/// Rules:
///  - unordered-iteration: a range-for or .begin() loop over a
///    std::unordered_map/unordered_set variable whose body reaches an
///    output, trace, result or scheduling sink. Hash iteration order
///    depends on addresses and insertion history, so anything it emits
///    breaks bit-identical replay (DESIGN.md key decision 4). A loop that
///    only accumulates into a container which is std::sort-ed later in
///    the same scope is the sanctioned sort-before-emit spelling and is
///    not flagged.
///  - pointer-identity: pointer values leaking into ordering or output —
///    iteration over a pointer-keyed map/set (address order), "%p" in a
///    format string, streaming a pointer (<< &x, << (void*)x),
///    std::hash over a pointer type, or reinterpret_cast of a pointer to
///    an integer. Scope: src/, bench/ and tools/ (everything whose output
///    is compared across runs).
///  - callback-lifetime: per-capture escape analysis on lambdas handed to
///    Scheduler::at()/after() or stored in InplaceFunction members: a
///    named by-reference capture ([&x]) or an address-of init-capture
///    ([p = &x]) dangles if the callback outlives the frame. tests/ and
///    bench/ are exempt (the capturing frame runs the scheduler to
///    completion); src/ and tools/ are not.
///  - discarded-error: a statement-expression call of a function whose
///    return type is FsError or MetaReply, with the result discarded.
///    With the PR-5 retry layer an ignored FsError::TimedOut is a silent
///    correctness hole. The function set is harvested from declarations
///    in the tree itself, so new APIs are covered automatically.
///  - nodiscard-annotation: an FsError/MetaReply-returning function
///    declared in a header without [[nodiscard]] — the compile-time half
///    of discarded-error ( -Werror turns the compiler into the second
///    gate).
///  - layering / include-cycle / unused-include: see IncludeGraph.h.
///
/// A finding on a line containing "dmeta-analyze: allow(<rule>) <why>" is
/// suppressed; the justification text is enforced by dmeta-lint's
/// suppression-justification rule.
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_ANALYZEENGINE_H
#define DMETABENCH_TOOLS_ANALYZE_ANALYZEENGINE_H

#include "analyze/Diagnostics.h"
#include <cstddef>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

/// Analyzes the repo tree under \p Root (src/, tests/, bench/, tools/).
/// \p FilesChecked, when non-null, receives the number of files scanned.
std::vector<Finding> analyzeTree(const std::string &Root,
                                 size_t *FilesChecked = nullptr);

/// Analyzes in-memory sources given as (RelPath, Content) pairs — the
/// unit-test entry point; identical semantics to analyzeTree.
std::vector<Finding>
analyzeSources(const std::vector<std::pair<std::string, std::string>> &Files);

/// Rule names understood by analyzeTree, for --rule validation.
const std::vector<std::string> &analyzeRuleNames();

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_ANALYZEENGINE_H
