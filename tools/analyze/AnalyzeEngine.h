//===- tools/analyze/AnalyzeEngine.h - Symbol-aware rules -------*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine behind tools/dmeta-analyze: symbol-aware determinism and
/// lifetime rules that the line-level lint (tools/lint) cannot express.
/// It works on the shared token stream (analyze/Tokenizer.h) plus the
/// project include graph (analyze/IncludeGraph.h).
///
/// Rules:
///  - unordered-iteration: a range-for or .begin() loop over a
///    std::unordered_map/unordered_set variable whose body reaches an
///    output, trace, result or scheduling sink. Hash iteration order
///    depends on addresses and insertion history, so anything it emits
///    breaks bit-identical replay (DESIGN.md key decision 4). A loop that
///    only accumulates into a container which is std::sort-ed later in
///    the same scope is the sanctioned sort-before-emit spelling and is
///    not flagged.
///  - pointer-identity: pointer values leaking into ordering or output —
///    iteration over a pointer-keyed map/set (address order), "%p" in a
///    format string, streaming a pointer (<< &x, << (void*)x),
///    std::hash over a pointer type, or reinterpret_cast of a pointer to
///    an integer. Scope: src/, bench/ and tools/ (everything whose output
///    is compared across runs).
///  - callback-lifetime: per-capture escape analysis on lambdas handed to
///    Scheduler::at()/after() or stored in InplaceFunction members: a
///    named by-reference capture ([&x]) or an address-of init-capture
///    ([p = &x]) dangles if the callback outlives the frame. tests/ and
///    bench/ are exempt (the capturing frame runs the scheduler to
///    completion); src/ and tools/ are not.
///  - discarded-error: a statement-expression call of a function whose
///    return type is FsError or MetaReply, with the result discarded.
///    With the PR-5 retry layer an ignored FsError::TimedOut is a silent
///    correctness hole. The function set is harvested from declarations
///    in the tree itself, so new APIs are covered automatically.
///  - nodiscard-annotation: an FsError/MetaReply-returning function
///    declared in a header without [[nodiscard]] — the compile-time half
///    of discarded-error ( -Werror turns the compiler into the second
///    gate).
///  - swallowed-completion-error: a completion lambda handed to an async
///    submission API (submit/enqueue/rpc/transact/process/processEager)
///    that names its MetaReply parameter but never reads .Err/.ok() nor
///    forwards the reply. With the write-behind queue the completion is
///    the only place a deferred op's failure surfaces, so ignoring it
///    swallows the error; an unnamed `(MetaReply)` parameter is the
///    sanctioned explicit discard. tests/ and bench/ are exempt.
///  - layering / include-cycle / unused-include: see IncludeGraph.h.
///
/// Interprocedural rules (built on analyze/SymbolTable.h and
/// analyze/CallGraph.h — function summaries propagated over resolved call
/// edges to a fixpoint):
///  - determinism-taint: nondeterminism sources (std::random_device,
///    rand()/srand()/drand48(), wall-clock ::now() reads, getpid(),
///    pointer-to-integer casts, pointer hashes) tracked through local
///    assignments and function returns; flagged when a tainted value
///    reaches a determinism sink — a trace/result call, a printf/stream
///    emission, a scheduled time, or a call whose callee transitively
///    reaches such a sink.
///  - error-path-propagation: the interprocedural half of
///    discarded-error. `auto`-returning wrappers that just forward an
///    FsError/MetaReply-returning call join the checked set
///    transitively, so discarding a wrapper's result is flagged too; and
///    a function that stores an error result in a local it never reads
///    afterwards ("swallowed error") is flagged at the assignment.
///  - blocking-in-callback: call-graph reachability from callback
///    contexts to primitives that must not run there. Quiescence checks
///    (Scheduler::addQuiescenceCheck) are read-only diagnostics: reaching
///    SimMutex::lock, Resource::request or Scheduler::at/after from one
///    is flagged. Ordinary at()/after() callbacks may use those (that is
///    the engine's continuation-passing design) but must never re-enter
///    the scheduler loop via Scheduler::run/runUntil.
///
/// A finding on a line containing "dmeta-analyze: allow(<rule>) <why>" is
/// suppressed; the justification text is enforced by dmeta-lint's
/// suppression-justification rule.
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_ANALYZEENGINE_H
#define DMETABENCH_TOOLS_ANALYZE_ANALYZEENGINE_H

#include "analyze/Diagnostics.h"
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

/// Analyzes the repo tree under \p Root (src/, tests/, bench/, tools/).
/// \p FilesChecked, when non-null, receives the number of files scanned.
std::vector<Finding> analyzeTree(const std::string &Root,
                                 size_t *FilesChecked = nullptr);

/// Analyzes in-memory sources given as (RelPath, Content) pairs — the
/// unit-test entry point; identical semantics to analyzeTree.
std::vector<Finding>
analyzeSources(const std::vector<std::pair<std::string, std::string>> &Files);

/// Rule names understood by analyzeTree, for --rule validation.
const std::vector<std::string> &analyzeRuleNames();

/// Builds the whole-tree symbol table and call graph under \p Root and
/// writes it in Graphviz dot format (the --dot flag). Returns false when
/// no sources are found.
bool writeCallGraphDot(const std::string &Root, std::ostream &OS);

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_ANALYZEENGINE_H
