//===- tools/analyze/CallGraph.cpp ----------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/CallGraph.h"
#include <algorithm>
#include <functional>

using namespace dmb;
using namespace dmb::analyze;

namespace {

/// Identifiers that look like calls but are never callees.
bool isCallBlacklisted(const std::string &Name) {
  static const std::set<std::string> W = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "alignas",  "decltype",
      "new",      "delete",   "throw",    "operator", "static_assert",
      "noexcept", "defined",  "assert",   "int",      "bool",
      "char",     "float",    "double",   "void",     "unsigned",
      "long",     "short",    "auto"};
  return W.count(Name) != 0;
}

bool isAllCapsMacro(const std::string &Name) {
  return std::all_of(Name.begin(), Name.end(), [](char C) {
    return (C >= 'A' && C <= 'Z') || C == '_' || (C >= '0' && C <= '9');
  });
}

bool punctIs(const Token &T, const char *Text) {
  return T.Kind == TokKind::Punct && T.Text == Text;
}

} // namespace

std::vector<CallSite> dmb::analyze::collectCalls(const std::vector<Token> &Toks,
                                                 size_t Begin, size_t End,
                                                 const std::string &CallerClass,
                                                 const SymbolTable &ST) {
  std::vector<CallSite> Out;
  for (size_t I = Begin; I + 1 < End; ++I) {
    if (Toks[I].Kind != TokKind::Ident || !punctIs(Toks[I + 1], "("))
      continue;
    if (isCallBlacklisted(Toks[I].Text) || isAllCapsMacro(Toks[I].Text))
      continue;

    // Walk back over an explicit `A::B::` qualifier chain.
    size_t ChainHead = I;
    std::string Qualifier;
    while (ChainHead >= 2 && punctIs(Toks[ChainHead - 1], "::") &&
           Toks[ChainHead - 2].Kind == TokKind::Ident) {
      Qualifier = Toks[ChainHead - 2].Text; // innermost qualifier wins
      ChainHead -= 2;
    }

    bool IsMember = false;
    if (ChainHead > 0) {
      const Token &P = Toks[ChainHead - 1];
      if (punctIs(P, ".") || punctIs(P, "->"))
        IsMember = true;
      else if (P.Kind == TokKind::Ident && P.Text != "return" &&
               P.Text != "co_return" && P.Text != "else" && P.Text != "do" &&
               Qualifier.empty() && !IsMember)
        continue; // `Type name(args)` — a declaration, not a call
    }

    CallSite CS;
    CS.NameTok = I;
    CS.Line = Toks[I].Line;
    CS.Name = Toks[I].Text;
    CS.Qualifier = Qualifier;
    CS.IsMember = IsMember;
    CS.Callee = ST.resolveCall(Qualifier, CallerClass, CS.Name);
    Out.push_back(std::move(CS));
  }
  return Out;
}

void CallGraph::build(const SymbolTable &Table,
                      const std::vector<SourceFile> &Files) {
  ST = &Table;
  Edges.clear();
  Succ.clear();
  Pred.clear();
  CompOf.clear();
  Comps.clear();

  const std::vector<Symbol> &Syms = Table.symbols();
  for (int DefIdx : Table.definitions()) {
    const Symbol &S = Syms[DefIdx];
    const std::vector<Token> &Toks = Files[S.FileIndex].Toks.Tokens;
    for (const CallSite &CS :
         collectCalls(Toks, S.BodyBegin, S.BodyEnd, S.ClassName, Table)) {
      if (CS.Callee < 0 || CS.Callee == DefIdx)
        continue;
      Edges.push_back({DefIdx, CS.Callee, CS.Line});
    }
  }
  std::sort(Edges.begin(), Edges.end(),
            [](const CallEdge &A, const CallEdge &B) {
              if (A.Caller != B.Caller)
                return A.Caller < B.Caller;
              if (A.Callee != B.Callee)
                return A.Callee < B.Callee;
              return A.Line < B.Line;
            });
  for (const CallEdge &E : Edges) {
    Succ[E.Caller].push_back(E.Callee);
    Pred[E.Callee].push_back(E.Caller);
  }
  auto dedupe = [](std::map<int, std::vector<int>> &Adj) {
    for (auto &KV : Adj) {
      std::sort(KV.second.begin(), KV.second.end());
      KV.second.erase(std::unique(KV.second.begin(), KV.second.end()),
                      KV.second.end());
    }
  };
  dedupe(Succ);
  dedupe(Pred);
  computeSccs();
}

const std::vector<int> &CallGraph::successors(int SymIdx) const {
  auto It = Succ.find(SymIdx);
  return It == Succ.end() ? EmptyAdj : It->second;
}

const std::vector<int> &CallGraph::predecessors(int SymIdx) const {
  auto It = Pred.find(SymIdx);
  return It == Pred.end() ? EmptyAdj : It->second;
}

std::set<int> CallGraph::reachableFrom(int SymIdx) const {
  std::set<int> Seen;
  std::vector<int> Work = {SymIdx};
  while (!Work.empty()) {
    int N = Work.back();
    Work.pop_back();
    if (!Seen.insert(N).second)
      continue;
    for (int M : successors(N))
      Work.push_back(M);
  }
  return Seen;
}

bool CallGraph::reaches(int From, int To) const {
  return reachableFrom(From).count(To) != 0;
}

int CallGraph::sccOf(int SymIdx) const {
  auto It = CompOf.find(SymIdx);
  return It == CompOf.end() ? -1 : It->second;
}

void CallGraph::computeSccs() {
  // Tarjan, over the definitions in deterministic order. Components are
  // emitted callees-first (reverse topological order of the condensation).
  std::map<int, int> Index, Low;
  std::map<int, bool> OnStack;
  std::vector<int> Stack;
  int NextIndex = 0;

  std::function<void(int)> strongConnect = [&](int V) {
    Index[V] = Low[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = true;
    for (int W : successors(V)) {
      if (!Index.count(W)) {
        strongConnect(W);
        Low[V] = std::min(Low[V], Low[W]);
      } else if (OnStack[W]) {
        Low[V] = std::min(Low[V], Index[W]);
      }
    }
    if (Low[V] == Index[V]) {
      std::vector<int> Members;
      while (true) {
        int W = Stack.back();
        Stack.pop_back();
        OnStack[W] = false;
        Members.push_back(W);
        if (W == V)
          break;
      }
      std::sort(Members.begin(), Members.end());
      int Id = static_cast<int>(Comps.size());
      for (int M : Members)
        CompOf[M] = Id;
      Comps.push_back(std::move(Members));
    }
  };

  for (int DefIdx : ST->definitions())
    if (!Index.count(DefIdx))
      strongConnect(DefIdx);
}

void CallGraph::writeDot(std::ostream &OS) const {
  const std::vector<Symbol> &Syms = ST->symbols();
  OS << "digraph callgraph {\n";
  OS << "  rankdir=LR;\n";
  OS << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  // Only nodes that participate in an edge: the isolated majority would
  // drown the render.
  std::set<int> Used;
  for (const CallEdge &E : Edges) {
    Used.insert(E.Caller);
    Used.insert(E.Callee);
  }
  for (int N : Used)
    OS << "  \"" << Syms[N].Qualified << "\";\n";
  std::set<std::pair<std::string, std::string>> Printed;
  for (const CallEdge &E : Edges) {
    auto Key = std::make_pair(Syms[E.Caller].Qualified, Syms[E.Callee].Qualified);
    if (!Printed.insert(Key).second)
      continue;
    OS << "  \"" << Key.first << "\" -> \"" << Key.second << "\";\n";
  }
  OS << "}\n";
}
