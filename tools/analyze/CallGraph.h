//===- tools/analyze/CallGraph.h - Whole-program call graph -----*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A call graph over the SymbolTable's definitions: one node per defined
/// function/method, one edge per call site whose callee resolves
/// (SymbolTable::resolveCall — qualified match, then same-class method,
/// then unique definition by name; ambiguous callees are dropped rather
/// than guessed). The graph powers the interprocedural rules:
///
///  - determinism-taint walks edges forward to propagate "returns a
///    nondeterministic value" summaries to callers,
///  - blocking-in-callback asks reachability questions ("can this
///    quiescence-check lambda reach SimMutex::lock?"),
///  - error-path-propagation extends the error-returning set through
///    wrapper functions.
///
/// Strongly connected components are condensed with Tarjan's algorithm so
/// fixpoint passes can run in reverse topological order over the DAG.
/// `--dot` renders the graph for CI artifacts; output is deterministic
/// (nodes and edges in sorted order) so diffs are meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_CALLGRAPH_H
#define DMETABENCH_TOOLS_ANALYZE_CALLGRAPH_H

#include "analyze/SymbolTable.h"
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

/// One call site found in a definition's body.
struct CallSite {
  size_t NameTok = 0;    ///< token index of the callee name
  int Line = 0;          ///< line of the call
  std::string Name;      ///< unqualified callee name
  std::string Qualifier; ///< explicit `X::` qualifier ("" if none)
  bool IsMember = false; ///< written as obj.name(...) / obj->name(...)
  int Callee = -1;       ///< resolved symbol index, -1 if unresolved
};

/// Scans [Begin, End) of a token stream for call sites and resolves each
/// against \p ST from the context of \p CallerClass. Shared between the
/// graph builder and rules that scan lambda bodies (which are not symbols).
std::vector<CallSite> collectCalls(const std::vector<Token> &Toks,
                                   size_t Begin, size_t End,
                                   const std::string &CallerClass,
                                   const SymbolTable &ST);

/// One resolved caller→callee edge.
struct CallEdge {
  int Caller = -1; ///< symbol index of the calling definition
  int Callee = -1; ///< symbol index of the called definition
  int Line = 0;    ///< line of the call site in the caller's file
};

class CallGraph {
public:
  /// Builds edges over \p ST's definitions. Both arguments must outlive
  /// the graph.
  void build(const SymbolTable &ST, const std::vector<SourceFile> &Files);

  const std::vector<CallEdge> &edges() const { return Edges; }

  /// Resolved callees of \p SymIdx (sorted, deduplicated).
  const std::vector<int> &successors(int SymIdx) const;

  /// Resolved callers of \p SymIdx (sorted, deduplicated).
  const std::vector<int> &predecessors(int SymIdx) const;

  /// All definitions reachable from \p SymIdx along call edges,
  /// including \p SymIdx itself.
  std::set<int> reachableFrom(int SymIdx) const;

  /// True when \p To is reachable from \p From (reflexive).
  bool reaches(int From, int To) const;

  /// Strongly connected component id of a definition (dense ids in
  /// reverse topological order: callees have lower ids than callers
  /// across components).
  int sccOf(int SymIdx) const;

  /// Members of each SCC, indexed by component id.
  const std::vector<std::vector<int>> &sccMembers() const { return Comps; }

  /// Writes the graph in Graphviz dot format; deterministic output.
  void writeDot(std::ostream &OS) const;

private:
  void computeSccs();

  const SymbolTable *ST = nullptr;
  std::vector<CallEdge> Edges;
  std::map<int, std::vector<int>> Succ;
  std::map<int, std::vector<int>> Pred;
  std::map<int, int> CompOf;
  std::vector<std::vector<int>> Comps;
  std::vector<int> EmptyAdj;
};

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_CALLGRAPH_H
