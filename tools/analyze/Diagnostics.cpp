//===- tools/analyze/Diagnostics.cpp --------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/Diagnostics.h"
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace dmb;
using namespace dmb::analyze;

std::string dmb::analyze::renderFinding(const Finding &F) {
  // Built with += rather than an operator+ chain: GCC 12's -Wrestrict
  // misfires on the chained temporary and the build runs -Werror.
  std::string Out = F.File;
  if (F.Line > 0) {
    Out += ':';
    Out += std::to_string(F.Line);
  }
  Out += ": [";
  Out += F.Rule;
  Out += "] ";
  Out += F.Message;
  return Out;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string
dmb::analyze::renderFindingsJson(const std::string &Tool, size_t FilesChecked,
                                 const std::vector<Finding> &Findings) {
  std::ostringstream Os;
  Os << "{\"tool\": \"" << jsonEscape(Tool) << "\", \"filesChecked\": "
     << FilesChecked << ", \"findings\": [";
  for (size_t I = 0; I < Findings.size(); ++I) {
    const Finding &F = Findings[I];
    if (I)
      Os << ", ";
    Os << "{\"file\": \"" << jsonEscape(F.File) << "\", \"line\": " << F.Line
       << ", \"rule\": \"" << jsonEscape(F.Rule) << "\", \"message\": \""
       << jsonEscape(F.Message) << "\"}";
  }
  Os << "]}";
  return Os.str();
}

bool dmb::analyze::allowedOnLine(const std::string &RawLine,
                                 const std::string &Tool,
                                 const std::string &Rule) {
  return RawLine.find(Tool + ": allow(" + Rule + ")") != std::string::npos;
}

bool dmb::analyze::readFile(const std::string &Path, std::string &Content) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Content = Ss.str();
  return true;
}

std::vector<std::string>
dmb::analyze::collectSourceFiles(const std::string &Root,
                                 const std::vector<std::string> &TopDirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> RelPaths;
  for (const std::string &Top : TopDirs) {
    fs::path Dir = fs::path(Root) / Top;
    std::error_code Ec;
    if (!fs::is_directory(Dir, Ec))
      continue;
    for (auto It = fs::recursive_directory_iterator(Dir, Ec);
         !Ec && It != fs::recursive_directory_iterator(); ++It) {
      if (!It->is_regular_file())
        continue;
      std::string Ext = It->path().extension().string();
      if (Ext != ".h" && Ext != ".cpp" && Ext != ".cc")
        continue;
      RelPaths.push_back(
          fs::relative(It->path(), fs::path(Root), Ec).generic_string());
    }
  }
  std::sort(RelPaths.begin(), RelPaths.end());
  return RelPaths;
}
