//===- tools/analyze/Diagnostics.h - Shared finding machinery ---*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pieces tools/lint and tools/analyze share besides the tokenizer:
/// the Finding record, the suppression escape hatch, the text and JSON
/// renderers, and the deterministic source-tree walk. Keeping them here
/// guarantees the two tools agree on output format (one GitHub problem
/// matcher covers both) and on suppression spelling.
///
/// Suppressions: a finding on a line containing
///
///   <tool>: allow(<rule>) <justification>
///
/// (e.g. "dmeta-analyze: allow(unused-include) kept for operator<<") is
/// dropped. The justification text is mandatory — the lint engine's
/// suppression-justification rule flags bare allow() comments, so every
/// suppression in the tree documents why it is sound.
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_DIAGNOSTICS_H
#define DMETABENCH_TOOLS_ANALYZE_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

/// One rule violation at a specific source line (Line is 1-based; 0 for
/// whole-file findings such as a missing header guard).
struct Finding {
  std::string File; ///< repo-relative path, forward slashes
  int Line = 0;
  std::string Rule;
  std::string Message;
};

/// "file:line: [rule] message" (":line" omitted when Line == 0).
std::string renderFinding(const Finding &F);

/// The whole result set as a JSON object:
///   {"tool": "...", "filesChecked": N, "findings": [{...}, ...]}
std::string renderFindingsJson(const std::string &Tool, size_t FilesChecked,
                               const std::vector<Finding> &Findings);

/// True when \p RawLine carries "<Tool>: allow(<Rule>)" for exactly this
/// rule. Matches the raw (unsanitized) line: suppressions live in
/// comments.
bool allowedOnLine(const std::string &RawLine, const std::string &Tool,
                   const std::string &Rule);

/// Reads \p Path into \p Content; false on I/O failure.
bool readFile(const std::string &Path, std::string &Content);

/// Collects the .h/.cpp/.cc files under Root/<Top> for each entry of
/// \p TopDirs, as sorted repo-relative paths (deterministic walk order).
std::vector<std::string>
collectSourceFiles(const std::string &Root,
                   const std::vector<std::string> &TopDirs);

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_DIAGNOSTICS_H
