//===- tools/analyze/IncludeGraph.cpp -------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/IncludeGraph.h"
#include <algorithm>

using namespace dmb;
using namespace dmb::analyze;

namespace {

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

std::string dirName(const std::string &RelPath) {
  size_t Slash = RelPath.rfind('/');
  return Slash == std::string::npos ? std::string() : RelPath.substr(0, Slash);
}

const char *ToolName = "dmeta-analyze";

} // namespace

int dmb::analyze::layerBand(const std::string &RelPath) {
  if (startsWith(RelPath, "src/support/"))
    return 0;
  if (startsWith(RelPath, "src/sim/"))
    return 1;
  if (startsWith(RelPath, "src/fs/") || startsWith(RelPath, "src/dfs/") ||
      startsWith(RelPath, "src/cluster/") ||
      startsWith(RelPath, "src/workload/"))
    return 2;
  if (startsWith(RelPath, "src/core/") ||
      startsWith(RelPath, "src/analysis/") || startsWith(RelPath, "src/chart/"))
    return 3;
  if (startsWith(RelPath, "src/dmetabench/"))
    return 4;
  if (startsWith(RelPath, "bench/") || startsWith(RelPath, "tests/") ||
      startsWith(RelPath, "tools/") || startsWith(RelPath, "examples/"))
    return 5;
  return -1;
}

IncludeGraph::IncludeGraph(const std::vector<SourceFile> &Files)
    : Files(Files) {
  for (const SourceFile &F : Files)
    ByPath[F.RelPath] = &F;
  for (const SourceFile &F : Files) {
    std::vector<Edge> &Out = Edges[F.RelPath];
    for (const Token &T : F.Toks.Tokens) {
      if (T.Kind != TokKind::Include || T.SystemInclude)
        continue;
      // Project includes are written relative to a -I root (src/, tools/,
      // bench/) or to the including file's own directory.
      std::string Resolved;
      for (const std::string &Cand :
           {"src/" + T.Text, "tools/" + T.Text, "bench/" + T.Text,
            dirName(F.RelPath).empty() ? T.Text
                                       : dirName(F.RelPath) + "/" + T.Text,
            T.Text}) {
        if (ByPath.count(Cand)) {
          Resolved = Cand;
          break;
        }
      }
      if (!Resolved.empty())
        Out.push_back({Resolved, T.Line});
    }
    std::vector<std::string> &Targets = EdgeTargets[F.RelPath];
    for (const Edge &E : Out)
      Targets.push_back(E.Target);
  }
}

const std::vector<std::string> &
IncludeGraph::edges(const std::string &RelPath) const {
  static const std::vector<std::string> Empty;
  auto It = EdgeTargets.find(RelPath);
  return It == EdgeTargets.end() ? Empty : It->second;
}

void IncludeGraph::check(std::vector<Finding> &Out) const {
  for (const SourceFile &F : Files) {
    checkLayering(F, Out);
    checkUnusedIncludes(F, Out);
  }
  checkCycles(Out);
}

void IncludeGraph::checkLayering(const SourceFile &F,
                                 std::vector<Finding> &Out) const {
  int FromBand = layerBand(F.RelPath);
  if (FromBand < 0)
    return;
  auto It = Edges.find(F.RelPath);
  if (It == Edges.end())
    return;
  for (const Edge &E : It->second) {
    int ToBand = layerBand(E.Target);
    if (ToBand < 0 || ToBand <= FromBand)
      continue;
    const std::string &Raw = static_cast<size_t>(E.Line - 1) < F.RawLines.size()
                                 ? F.RawLines[E.Line - 1]
                                 : F.RelPath;
    if (allowedOnLine(Raw, ToolName, "layering"))
      continue;
    Out.push_back({F.RelPath, E.Line, "layering",
                   "include of '" + E.Target + "' (band " +
                       std::to_string(ToBand) + ") from band " +
                       std::to_string(FromBand) +
                       " inverts the layer DAG; move the shared code down "
                       "or the dependent code up"});
  }
}

void IncludeGraph::checkCycles(std::vector<Finding> &Out) const {
  // Iterative DFS with an explicit color map; each cycle is reported once,
  // at the lexicographically smallest file on it, so reruns are stable.
  std::map<std::string, int> Color; // 0 new, 1 on stack, 2 done
  std::set<std::string> Reported;
  std::vector<std::string> Stack;

  // Recursive lambda via explicit stack of (node, next-edge-index).
  for (const SourceFile &F : Files) {
    if (Color[F.RelPath])
      continue;
    std::vector<std::pair<std::string, size_t>> Work;
    Work.push_back({F.RelPath, 0});
    Color[F.RelPath] = 1;
    Stack.push_back(F.RelPath);
    while (!Work.empty()) {
      auto &[Node, EdgeIdx] = Work.back();
      const std::vector<std::string> &Succ = edges(Node);
      if (EdgeIdx >= Succ.size()) {
        Color[Node] = 2;
        Stack.pop_back();
        Work.pop_back();
        continue;
      }
      const std::string &Next = Succ[EdgeIdx++];
      int C = Color[Next];
      if (C == 0) {
        Color[Next] = 1;
        Stack.push_back(Next);
        Work.push_back({Next, 0});
      } else if (C == 1) {
        // Found a back edge: the cycle is Stack[pos(Next) .. end].
        auto PosIt = std::find(Stack.begin(), Stack.end(), Next);
        std::vector<std::string> Cycle(PosIt, Stack.end());
        std::string Anchor = *std::min_element(Cycle.begin(), Cycle.end());
        std::string Path;
        // Rotate so the report starts at the anchor.
        size_t Start = std::find(Cycle.begin(), Cycle.end(), Anchor) -
                       Cycle.begin();
        for (size_t I = 0; I <= Cycle.size(); ++I) {
          if (I)
            Path += " -> ";
          Path += Cycle[(Start + I) % Cycle.size()];
        }
        if (Reported.insert(Path).second)
          Out.push_back({Anchor, 0, "include-cycle",
                         "include cycle: " + Path});
      }
    }
  }
}

std::set<std::string> IncludeGraph::declaredSymbols(const SourceFile &F) {
  std::set<std::string> Syms;
  const std::vector<Token> &T = F.Toks.Tokens;
  int TemplateDepth = 0; // inside template<...> parameter lists
  // The include-guard macro is plumbing, not interface: a name #defined
  // right after being #ifndef'd must not make a header look like it
  // declares something (that would defeat the umbrella exemption).
  std::set<std::string> GuardNames;
  for (size_t I = 0; I + 1 < T.size(); ++I)
    if (T[I].Kind == TokKind::Directive && T[I].Text == "ifndef" &&
        T[I + 1].Kind == TokKind::Ident)
      GuardNames.insert(T[I + 1].Text);
  for (size_t I = 0; I < T.size(); ++I) {
    const Token &Tok = T[I];
    if (Tok.Kind == TokKind::Directive && Tok.Text == "define") {
      if (I + 1 < T.size() && T[I + 1].Kind == TokKind::Ident &&
          !GuardNames.count(T[I + 1].Text))
        Syms.insert(T[I + 1].Text);
      continue;
    }
    if (Tok.Kind != TokKind::Ident)
      continue;
    // Skip template parameter lists: `template <class T, typename U>`
    // must not export T and U.
    if (Tok.Text == "template" && I + 1 < T.size() &&
        T[I + 1].Kind == TokKind::Punct && T[I + 1].Text == "<") {
      size_t Close = matchForward(T, I + 1);
      if (Close < T.size()) {
        I = Close;
        continue;
      }
    }
    (void)TemplateDepth;
    if (Tok.Text == "class" || Tok.Text == "struct" || Tok.Text == "union" ||
        Tok.Text == "enum") {
      size_t J = I + 1;
      if (J < T.size() && T[J].Kind == TokKind::Ident &&
          (T[J].Text == "class" || T[J].Text == "struct"))
        ++J; // enum class
      // Skip attributes: class [[nodiscard]] Name
      while (J + 1 < T.size() && T[J].Kind == TokKind::Punct &&
             T[J].Text == "[")
        J = matchForward(T, J) + 1;
      if (J < T.size() && T[J].Kind == TokKind::Ident) {
        Syms.insert(T[J].Text);
        // Enum members are usable by the includer via Name::Member.
        if (Tok.Text == "enum") {
          size_t K = J;
          while (K < T.size() && !(T[K].Kind == TokKind::Punct &&
                                   (T[K].Text == "{" || T[K].Text == ";")))
            ++K;
          if (K < T.size() && T[K].Text == "{") {
            size_t End = matchForward(T, K);
            for (size_t M = K + 1; M < End && M < T.size(); ++M)
              if (T[M].Kind == TokKind::Ident &&
                  (T[M - 1].Text == "{" || T[M - 1].Text == ","))
                Syms.insert(T[M].Text);
          }
        }
      }
      continue;
    }
    if (Tok.Text == "using") {
      if (I + 2 < T.size() && T[I + 1].Kind == TokKind::Ident &&
          T[I + 2].Kind == TokKind::Punct && T[I + 2].Text == "=")
        Syms.insert(T[I + 1].Text);
      continue;
    }
    if (Tok.Text == "typedef") {
      size_t J = I + 1;
      while (J < T.size() && !(T[J].Kind == TokKind::Punct && T[J].Text == ";"))
        ++J;
      if (J > I + 1 && T[J - 1].Kind == TokKind::Ident)
        Syms.insert(T[J - 1].Text);
      continue;
    }
    // Function, method, constant and member declarations: an identifier
    // followed by '(' / '=' / ';' whose predecessor looks like a type
    // (identifier, '>', '*', '&', '::' chain). Depth <= 2 keeps local
    // variables in inline bodies (depth >= 3) out.
    if (Tok.BraceDepth <= 2 && I > 0 && I + 1 < T.size()) {
      const Token &Prev = T[I - 1];
      const Token &Next = T[I + 1];
      bool TypeBefore =
          Prev.Kind == TokKind::Ident ||
          (Prev.Kind == TokKind::Punct &&
           (Prev.Text == ">" || Prev.Text == "*" || Prev.Text == "&" ||
            Prev.Text == "]")); // ']' closes an attribute
      bool DeclAfter = Next.Kind == TokKind::Punct &&
                       (Next.Text == "(" || Next.Text == "=" ||
                        Next.Text == ";" || Next.Text == "{" ||
                        Next.Text == "[");
      if (TypeBefore && DeclAfter)
        Syms.insert(Tok.Text);
    }
  }
  return Syms;
}

void IncludeGraph::checkUnusedIncludes(const SourceFile &F,
                                       std::vector<Finding> &Out) const {
  auto It = Edges.find(F.RelPath);
  if (It == Edges.end() || It->second.empty())
    return;

  // A pure re-export header (the DMetabench.h umbrella pattern): many
  // project includes and no declarations of its own. Its includes ARE its
  // interface; skip it.
  if (It->second.size() >= 5 && declaredSymbols(F).empty())
    return;

  // Identifiers the file itself references.
  std::set<std::string> Used;
  for (const Token &T : F.Toks.Tokens)
    if (T.Kind == TokKind::Ident)
      Used.insert(T.Text);

  for (const Edge &E : It->second) {
    auto TargetIt = ByPath.find(E.Target);
    if (TargetIt == ByPath.end())
      continue;
    // A .cpp including its own header is definitional, not a dependency.
    const std::string &Tgt = E.Target;
    if (Tgt.size() > 2 && F.RelPath.size() > 4 &&
        Tgt.substr(0, Tgt.size() - 2) ==
            F.RelPath.substr(0, F.RelPath.size() - 4))
      continue;
    std::set<std::string> Declared = declaredSymbols(*TargetIt->second);
    // An umbrella target declares nothing itself; what an includer gets
    // from it is the union of its direct includes, so credit those.
    if (Declared.empty()) {
      for (const std::string &Sub : edges(E.Target)) {
        auto SubIt = ByPath.find(Sub);
        if (SubIt == ByPath.end())
          continue;
        std::set<std::string> SubSyms = declaredSymbols(*SubIt->second);
        Declared.insert(SubSyms.begin(), SubSyms.end());
      }
    }
    bool UsedAny = false;
    for (const std::string &S : Declared)
      if (Used.count(S)) {
        UsedAny = true;
        break;
      }
    if (UsedAny)
      continue;
    const std::string &Raw = static_cast<size_t>(E.Line - 1) < F.RawLines.size()
                                 ? F.RawLines[E.Line - 1]
                                 : std::string();
    if (allowedOnLine(Raw, ToolName, "unused-include"))
      continue;
    Out.push_back({F.RelPath, E.Line, "unused-include",
                   "no symbol declared in '" + E.Target +
                       "' is referenced here; drop the include (or keep it "
                       "with a justified allow if it re-exports)"});
  }
}
