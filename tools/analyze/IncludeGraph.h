//===- tools/analyze/IncludeGraph.h - Layering & include hygiene -*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the project-internal include graph and checks the architecture
/// invariants that keep the tree a DAG with strict layering:
///
///   band 0: src/support                     (no dependencies)
///   band 1: src/sim                         (the simulation engine)
///   band 2: src/fs src/dfs src/cluster src/workload
///   band 3: src/core src/analysis src/chart (orchestration + post-run)
///   band 4: src/dmetabench                  (umbrella header)
///   band 5: bench tests tools examples      (consumers)
///
/// Rules:
///  - layering:      an #include whose target sits in a HIGHER band than
///                   the including file (same-band cross-directory
///                   includes are legal: dfs uses fs, core uses analysis).
///  - include-cycle: any cycle in the file-level include graph, reported
///                   once per cycle with the full path.
///  - unused-include: IWYU-lite — a project #include none of whose
///                   declared symbols (macros, types, functions, enum
///                   members, namespace-scope constants) is referenced by
///                   the including file. Pure re-export headers (many
///                   includes, no own declarations, e.g. DMetabench.h)
///                   are exempt as includers.
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_INCLUDEGRAPH_H
#define DMETABENCH_TOOLS_ANALYZE_INCLUDEGRAPH_H

#include "analyze/Diagnostics.h"
#include "analyze/Tokenizer.h"
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

/// Layer band of \p RelPath per the table above; -1 when the path is not
/// part of the layered tree (unknown top directory).
int layerBand(const std::string &RelPath);

/// One file's parsed view, shared between the graph and the rule engine.
struct SourceFile {
  std::string RelPath;
  std::string Content;
  TokenizedSource Toks;
  std::vector<std::string> RawLines;
};

/// The project-internal include graph over a set of parsed files.
class IncludeGraph {
public:
  /// Builds the graph. \p Files must outlive the graph.
  explicit IncludeGraph(const std::vector<SourceFile> &Files);

  /// Runs the layering, include-cycle and unused-include rules, appending
  /// findings. Suppressions use "dmeta-analyze: allow(<rule>) <why>".
  void check(std::vector<Finding> &Out) const;

  /// Resolved include edges of \p RelPath (repo-relative target paths).
  const std::vector<std::string> &edges(const std::string &RelPath) const;

private:
  struct Edge {
    std::string Target; ///< resolved repo-relative path
    int Line = 0;       ///< line of the #include directive
  };

  void checkLayering(const SourceFile &F, std::vector<Finding> &Out) const;
  void checkCycles(std::vector<Finding> &Out) const;
  void checkUnusedIncludes(const SourceFile &F,
                           std::vector<Finding> &Out) const;

  /// Identifiers declared by the file (types, functions, macros, enum
  /// members, constants) — what an #include of it can contribute.
  static std::set<std::string> declaredSymbols(const SourceFile &F);

  const std::vector<SourceFile> &Files;
  std::map<std::string, const SourceFile *> ByPath;
  std::map<std::string, std::vector<Edge>> Edges;
  std::map<std::string, std::vector<std::string>> EdgeTargets;
};

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_INCLUDEGRAPH_H
