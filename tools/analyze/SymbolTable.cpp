//===- tools/analyze/SymbolTable.cpp --------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/SymbolTable.h"
#include <algorithm>
#include <set>

using namespace dmb;
using namespace dmb::analyze;

namespace {

bool isPunct(const Token &T, const char *Text) {
  return T.Kind == TokKind::Punct && T.Text == Text;
}

bool isIdent(const Token &T, const char *Text) {
  return T.Kind == TokKind::Ident && T.Text == Text;
}

/// Specifier tokens that may precede (or trail) a declarator without
/// being part of the return type.
const std::set<std::string> &specifierWords() {
  static const std::set<std::string> W = {
      "static",   "inline",   "virtual",  "constexpr", "explicit",
      "friend",   "extern",   "mutable",  "typename",  "nodiscard",
      "maybe_unused"};
  return W;
}

/// Identifiers that can never be a callee/declarator name in the
/// patterns the table indexes.
const std::set<std::string> &nameBlacklist() {
  static const std::set<std::string> W = {
      "if",     "for",    "while",    "switch",   "catch",  "return",
      "sizeof", "alignof", "alignas", "decltype", "new",    "delete",
      "throw",  "operator", "static_assert", "defined", "noexcept",
      "assert"};
  return W;
}

/// Identifiers which, found directly before a name, mark a call or
/// statement rather than a declaration.
const std::set<std::string> &stmtPrefixWords() {
  static const std::set<std::string> W = {"return", "else",   "case",
                                          "goto",   "do",     "new",
                                          "delete", "throw",  "co_return",
                                          "operator"};
  return W;
}

/// A namespace or class extent in one file's token stream.
struct ScopeInterval {
  enum Kind { Namespace, Class } K;
  std::string Name;
  size_t Open;  ///< token index of '{'
  size_t Close; ///< token index of matching '}'
};

/// Recovers namespace and class/struct extents for one file.
std::vector<ScopeInterval> scopeIntervals(const std::vector<Token> &T) {
  std::vector<ScopeInterval> Out;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].Kind != TokKind::Ident || T[I].ParenDepth != 0)
      continue;
    if (T[I].Text == "namespace") {
      // namespace A::B { ... } or the anonymous namespace.
      std::string Name;
      size_t J = I + 1;
      while (J < T.size() &&
             (T[J].Kind == TokKind::Ident || isPunct(T[J], "::"))) {
        Name += T[J].Text;
        ++J;
      }
      if (J < T.size() && isPunct(T[J], "{")) {
        size_t Close = matchForward(T, J);
        if (Close < T.size())
          Out.push_back({ScopeInterval::Namespace, Name, J, Close});
      }
      continue;
    }
    if (T[I].Text == "class" || T[I].Text == "struct") {
      // Skip template parameters (`template <class T>`) and `enum class`.
      if (I > 0 && (isPunct(T[I - 1], "<") || isPunct(T[I - 1], ",") ||
                    isIdent(T[I - 1], "enum")))
        continue;
      if (I + 1 >= T.size() || T[I + 1].Kind != TokKind::Ident)
        continue;
      std::string Name = T[I + 1].Text;
      // Find the body '{' (or bail at ';' — forward declaration — or at
      // '(' — `struct X` used as a type in a signature).
      for (size_t J = I + 2; J < T.size(); ++J) {
        if (isPunct(T[J], ";") || isPunct(T[J], "(") ||
            isPunct(T[J], ")") || isPunct(T[J], "}"))
          break;
        if (isPunct(T[J], "{")) {
          size_t Close = matchForward(T, J);
          if (Close < T.size())
            Out.push_back({ScopeInterval::Class, Name, J, Close});
          break;
        }
      }
    }
  }
  return Out;
}

/// Consumes a constructor initializer list starting at the ':' token;
/// returns the index of the body '{', or Tokens.size() when the shape is
/// not an initializer list.
size_t skipCtorInit(const std::vector<Token> &T, size_t Colon) {
  size_t J = Colon + 1;
  while (J < T.size()) {
    // Member (possibly qualified) ...
    while (J < T.size() &&
           (T[J].Kind == TokKind::Ident || isPunct(T[J], "::")))
      ++J;
    if (J >= T.size())
      return T.size();
    // ... initialized with (...) or {...} ...
    if (isPunct(T[J], "(") || isPunct(T[J], "{")) {
      size_t Close = matchForward(T, J);
      if (Close >= T.size())
        return T.size();
      J = Close + 1;
    } else {
      return T.size();
    }
    // ... then another member or the body.
    if (J < T.size() && isPunct(T[J], ",")) {
      ++J;
      continue;
    }
    if (J < T.size() && isPunct(T[J], "{"))
      return J;
    return T.size();
  }
  return T.size();
}

} // namespace

std::string SymbolTable::key(const Symbol &S) {
  return S.ClassName.empty() ? S.Name : S.ClassName + "::" + S.Name;
}

void SymbolTable::build(const std::vector<SourceFile> &Files) {
  Syms.clear();
  Defs.clear();
  Classes.clear();
  ByName.clear();
  DefByKey.clear();
  for (size_t FI = 0; FI < Files.size(); ++FI)
    indexFile(Files[FI], static_cast<int>(FI));
  std::set<std::string> ClassSet;
  for (size_t I = 0; I < Syms.size(); ++I) {
    ByName[Syms[I].Name].push_back(static_cast<int>(I));
    if (!Syms[I].ClassName.empty())
      ClassSet.insert(Syms[I].ClassName);
    if (Syms[I].IsDefinition) {
      Defs.push_back(static_cast<int>(I));
      // First definition wins for a duplicated key (overload sets);
      // the file walk is sorted, so this is deterministic.
      DefByKey.emplace(key(Syms[I]), static_cast<int>(I));
    } else {
      DeclByKey.emplace(key(Syms[I]), static_cast<int>(I));
    }
  }
  Classes.assign(ClassSet.begin(), ClassSet.end());
}

void SymbolTable::indexFile(const SourceFile &F, int FileIndex) {
  const std::vector<Token> &T = F.Toks.Tokens;
  std::vector<ScopeInterval> Scopes = scopeIntervals(T);

  auto enclosing = [&](size_t Idx, std::string &NsPath, std::string &Cls,
                       int &ScopeCount) {
    NsPath.clear();
    Cls.clear();
    ScopeCount = 0;
    for (const ScopeInterval &S : Scopes) {
      if (S.Open < Idx && Idx < S.Close) {
        ++ScopeCount;
        if (S.K == ScopeInterval::Namespace) {
          if (!S.Name.empty()) {
            if (!NsPath.empty())
              NsPath += "::";
            NsPath += S.Name;
          }
        } else {
          Cls = S.Name; // innermost class wins (intervals nest in order)
        }
      }
    }
  };

  for (size_t I = 0; I + 1 < T.size(); ++I) {
    if (T[I].Kind != TokKind::Ident || !isPunct(T[I + 1], "("))
      continue;
    if (nameBlacklist().count(T[I].Text))
      continue;
    // All-caps identifiers are macros (DMB_ASSERT, TEST, EXPECT_EQ...).
    if (std::all_of(T[I].Text.begin(), T[I].Text.end(), [](char C) {
          return (C >= 'A' && C <= 'Z') || C == '_' || (C >= '0' && C <= '9');
        }))
      continue;

    // Walk back over an explicit `A::B::` qualifier chain.
    size_t ChainHead = I;
    std::vector<std::string> Quals;
    while (ChainHead >= 2 && isPunct(T[ChainHead - 1], "::") &&
           T[ChainHead - 2].Kind == TokKind::Ident) {
      Quals.insert(Quals.begin(), T[ChainHead - 2].Text);
      ChainHead -= 2;
    }

    // Declaration position: the token before the name chain must be a
    // type-ish token. Calls are preceded by punctuation or statement
    // keywords; constructors (no return type) are accepted only when the
    // name matches the enclosing class.
    std::string NsPath, Cls;
    int ScopeCount = 0;
    enclosing(I, NsPath, Cls, ScopeCount);
    // Only index symbols whose every enclosing brace is a recognized
    // namespace/class scope — anything deeper is a statement inside a
    // function body (local declarations, calls).
    if (T[I].BraceDepth != ScopeCount)
      continue;

    bool TypePreceded = false;
    bool CtorLike = false;
    if (ChainHead == 0) {
      TypePreceded = false;
    } else {
      const Token &P = T[ChainHead - 1];
      if (P.Kind == TokKind::Ident)
        TypePreceded = !stmtPrefixWords().count(P.Text);
      else if (P.Kind == TokKind::Punct)
        TypePreceded = P.Text == ">" || P.Text == "*" || P.Text == "&" ||
                       P.Text == "]";
    }
    std::string OwnClass = !Quals.empty() ? Quals.back() : Cls;
    if (!TypePreceded) {
      // Constructor shape: name == enclosing/explicit class.
      if (T[I].Text == OwnClass && !OwnClass.empty())
        CtorLike = true;
      else
        continue;
    }

    // Parameter list and what follows it.
    size_t ParClose = matchForward(T, I + 1);
    if (ParClose >= T.size())
      continue;
    size_t J = ParClose + 1;
    bool IsDef = false, IsDecl = false;
    size_t BodyOpen = 0;
    while (J < T.size()) {
      const Token &C = T[J];
      if (C.Kind == TokKind::Ident &&
          (C.Text == "const" || C.Text == "noexcept" || C.Text == "override" ||
           C.Text == "final" || C.Text == "mutable")) {
        ++J;
        if (J < T.size() && isPunct(T[J], "(")) { // noexcept(...)
          size_t Cl = matchForward(T, J);
          if (Cl >= T.size())
            break;
          J = Cl + 1;
        }
        continue;
      }
      if (isPunct(C, "->")) { // trailing return type
        ++J;
        while (J < T.size() &&
               (T[J].Kind == TokKind::Ident || isPunct(T[J], "::") ||
                isPunct(T[J], "*") || isPunct(T[J], "&")))
          ++J;
        if (J < T.size() && isPunct(T[J], "<")) {
          size_t Cl = matchForward(T, J);
          if (Cl >= T.size())
            break;
          J = Cl + 1;
        }
        continue;
      }
      if (isPunct(C, ":")) { // constructor initializer list
        size_t Body = skipCtorInit(T, J);
        if (Body < T.size()) {
          IsDef = true;
          BodyOpen = Body;
        }
        break;
      }
      if (isPunct(C, "{")) {
        IsDef = true;
        BodyOpen = J;
        break;
      }
      if (isPunct(C, ";")) {
        IsDecl = true;
        break;
      }
      if (isPunct(C, "=")) { // pure virtual / = default / = delete
        IsDecl = true;
        break;
      }
      break; // anything else: not a function header
    }
    if (!IsDef && !IsDecl)
      continue;

    // Most-vexing-parse guard for declarations: `SimTime T(5);` is a
    // variable. A parameter list never contains literals.
    if (IsDecl) {
      bool HasLiteral = false;
      for (size_t K = I + 2; K < ParClose; ++K)
        if (T[K].Kind == TokKind::Number || T[K].Kind == TokKind::String)
          HasLiteral = true;
      if (HasLiteral)
        continue;
    }

    // Return type: tokens from the statement start to the name chain,
    // specifiers and attributes stripped.
    std::string Ret;
    if (!CtorLike) {
      size_t Start = ChainHead;
      while (Start > 0) {
        const Token &P = T[Start - 1];
        if (P.Kind == TokKind::Punct &&
            (P.Text == ";" || P.Text == "{" || P.Text == "}" ||
             P.Text == ":" || P.Text == ")"))
          break;
        if (P.Kind == TokKind::Include || P.Kind == TokKind::Directive)
          break;
        --Start;
      }
      for (size_t K = Start; K < ChainHead; ++K) {
        if (T[K].Kind == TokKind::Ident && specifierWords().count(T[K].Text))
          continue;
        if (isPunct(T[K], "[") || isPunct(T[K], "]"))
          continue;
        if (!Ret.empty())
          Ret += ' ';
        Ret += T[K].Text;
      }
    }

    Symbol S;
    S.Name = T[I].Text;
    S.ClassName = OwnClass;
    S.Qualified = (NsPath.empty() ? "" : NsPath + "::");
    if (!Quals.empty()) {
      for (const std::string &Q : Quals)
        S.Qualified += Q + "::";
    } else if (!Cls.empty()) {
      S.Qualified += Cls + "::";
    }
    S.Qualified += S.Name;
    S.ReturnType = Ret;
    S.FileIndex = FileIndex;
    S.Line = T[I].Line;
    S.IsDefinition = IsDef;
    S.IsMethod = !OwnClass.empty();
    S.NameTok = I;
    if (IsDef) {
      S.BodyBegin = BodyOpen + 1;
      S.BodyEnd = matchForward(T, BodyOpen);
      if (S.BodyEnd >= T.size())
        continue; // unbalanced body: drop rather than mis-span
    }
    Syms.push_back(std::move(S));
  }
}

std::vector<int> SymbolTable::byName(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? std::vector<int>() : It->second;
}

int SymbolTable::definitionForKey(const std::string &Key) const {
  auto It = DefByKey.find(Key);
  return It == DefByKey.end() ? -1 : It->second;
}

int SymbolTable::symbolForKey(const std::string &Key) const {
  int Def = definitionForKey(Key);
  if (Def >= 0)
    return Def;
  auto It = DeclByKey.find(Key);
  return It == DeclByKey.end() ? -1 : It->second;
}

int SymbolTable::resolveCall(const std::string &Qualifier,
                             const std::string &CallerClass,
                             const std::string &Name) const {
  if (!Qualifier.empty())
    return symbolForKey(Qualifier + "::" + Name);
  if (!CallerClass.empty()) {
    int Hit = symbolForKey(CallerClass + "::" + Name);
    if (Hit >= 0)
      return Hit;
  }
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return -1;
  // Prefer a unique definition; fall back to a unique declaration so
  // calls into decl-only stubs (fixtures, forward interfaces) still
  // anchor reachability. Ambiguity across keys drops the edge.
  for (bool WantDef : {true, false}) {
    int Unique = -1;
    bool Ambiguous = false;
    for (int Idx : It->second) {
      if (Syms[Idx].IsDefinition != WantDef)
        continue;
      if (Unique >= 0 && key(Syms[Unique]) != key(Syms[Idx])) {
        Ambiguous = true;
        break;
      }
      if (Unique < 0)
        Unique = Idx;
    }
    if (Ambiguous)
      return -1;
    if (Unique >= 0)
      return Unique;
  }
  return -1;
}
