//===- tools/analyze/SymbolTable.h - Whole-program symbols ------*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program table of the functions, methods and classes the tree
/// declares and defines, built from the shared token stream
/// (analyze/Tokenizer.h) — no preprocessor, no real parser, but enough
/// structure for the interprocedural rules:
///
///  - Scope tracking: `namespace N { ... }` and `class/struct C { ... }`
///    extents are recovered per file, so a method declared inside a class
///    body gets the class as its context and an out-of-line definition
///    `Ret C::name(...) { ... }` gets it from the explicit qualifier.
///  - Declaration↔definition matching: symbols are keyed by
///    `Class::name` for methods and `name` for free functions,
///    namespaces stripped (the tree lives in `namespace dmb` with a
///    handful of nested tool namespaces; dropping them lets a decl in a
///    header match its definition in a .cpp that opens the namespace
///    with `using namespace`).
///  - Definitions carry their body as a token range, which is what the
///    call-graph builder and the dataflow rules walk.
///
/// Heuristics and their limits (documented, deliberate):
///  - A "function" is `Name(...)` at declaration position — preceded by
///    a type token — followed by `{` (definition) or `;` (declaration),
///    skipping cv/ref/noexcept/override/trailing-return tokens and
///    constructor initializer lists. Control-flow keywords and
///    statement-position calls never match.
///  - Macro-generated functions and operator overloads are not indexed.
///  - Templates are indexed like ordinary functions (one symbol, not one
///    per instantiation).
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_SYMBOLTABLE_H
#define DMETABENCH_TOOLS_ANALYZE_SYMBOLTABLE_H

#include "analyze/IncludeGraph.h"
#include <map>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

/// One declared or defined function/method.
struct Symbol {
  std::string Name;       ///< unqualified name ("lock")
  std::string ClassName;  ///< enclosing or explicit class; "" for free fns
  std::string Qualified;  ///< display name incl. namespaces
  std::string ReturnType; ///< space-joined return-type tokens ("FsError")
  int FileIndex = -1;     ///< index into the file list given to build()
  int Line = 0;           ///< line of the name token
  bool IsDefinition = false;
  bool IsMethod = false;
  size_t NameTok = 0;  ///< token index of the name in its file
  size_t BodyBegin = 0; ///< definitions: first token index inside '{'
  size_t BodyEnd = 0;   ///< definitions: index of the matching '}'
};

/// Whole-tree symbol table over a parsed file set.
class SymbolTable {
public:
  /// Indexes \p Files (which must outlive the table).
  void build(const std::vector<SourceFile> &Files);

  const std::vector<Symbol> &symbols() const { return Syms; }

  /// Indices of definition symbols, in deterministic (file, line) order.
  const std::vector<int> &definitions() const { return Defs; }

  /// Matching key: "Class::name" for methods, "name" for free functions.
  static std::string key(const Symbol &S);

  /// All symbol indices with unqualified name \p Name.
  std::vector<int> byName(const std::string &Name) const;

  /// Definition index for \p Key (see key()), or -1. When a symbol has a
  /// declaration and a definition, the definition wins.
  int definitionForKey(const std::string &Key) const;

  /// Like definitionForKey, but falls back to a declaration when no
  /// definition exists (a stub class declaring `void lock(Cb);` without a
  /// body is still a valid call target / reachability anchor).
  int symbolForKey(const std::string &Key) const;

  /// Resolves a call of \p Name made from inside \p CallerClass (may be
  /// empty), optionally written with an explicit `Qualifier::` prefix.
  /// Preference order: qualified key match, same-class method, then a
  /// unique definition by unqualified name. Returns the definition's
  /// symbol index, or -1 when unknown or ambiguous — the analysis drops
  /// ambiguous edges rather than guessing.
  int resolveCall(const std::string &Qualifier, const std::string &CallerClass,
                  const std::string &Name) const;

  /// Class names the tree defines (deduplicated, sorted).
  const std::vector<std::string> &classes() const { return Classes; }

private:
  void indexFile(const SourceFile &F, int FileIndex);

  std::vector<Symbol> Syms;
  std::vector<int> Defs;
  std::vector<std::string> Classes;
  std::map<std::string, std::vector<int>> ByName; ///< unqualified name
  std::map<std::string, int> DefByKey;            ///< key() of definitions
  std::map<std::string, int> DeclByKey;           ///< key() of declarations
};

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_SYMBOLTABLE_H
