//===- tools/analyze/Tokenizer.cpp ----------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/Tokenizer.h"

using namespace dmb;
using namespace dmb::analyze;

bool dmb::analyze::isIdentChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

std::vector<std::string> dmb::analyze::splitLines(const std::string &Content) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Content) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

namespace {

/// The scan state threaded through the whole file. Owns both output views
/// so one pass fills them consistently.
class Scanner {
public:
  explicit Scanner(const std::string &Content) : Src(Content) {}

  TokenizedSource run() {
    while (!atEnd())
      step();
    flushLine();
    return std::move(Out);
  }

private:
  bool atEnd() const { return I >= Src.size(); }
  char cur() const { return Src[I]; }
  char peek(size_t N = 1) const {
    return I + N < Src.size() ? Src[I + N] : '\0';
  }

  void emitSan(char C) { San += C; }

  void advance() {
    if (Src[I] == '\n') {
      Out.SanitizedLines.push_back(San);
      San.clear();
      ++Line;
      AtLineStart = true;
    }
    ++I;
  }

  void flushLine() {
    if (!San.empty() || !Out.SanitizedLines.empty() || !Out.Tokens.empty()) {
      // Mirror splitLines(): a trailing newline does not open a new line.
      if (!San.empty())
        Out.SanitizedLines.push_back(San);
    }
    San.clear();
  }

  void push(TokKind K, int TokLine, std::string Text, bool System = false) {
    Token T;
    T.Kind = K;
    T.Line = TokLine;
    T.Text = std::move(Text);
    T.BraceDepth = BraceDepth;
    T.ParenDepth = ParenDepth;
    T.SystemInclude = System;
    Out.Tokens.push_back(std::move(T));
  }

  /// Consumes a // or /* comment. Sanitized view drops the text entirely.
  void comment() {
    if (peek() == '/') {
      while (!atEnd() && cur() != '\n')
        ++I; // skip without emitting; newline handled by caller loop
      return;
    }
    // Block comment; may span lines.
    I += 2;
    while (!atEnd()) {
      if (cur() == '*' && peek() == '/') {
        I += 2;
        return;
      }
      advance();
    }
  }

  /// Consumes a user-defined-literal suffix ("abc"sv, 'a'_tag, R"(x)"_w)
  /// directly after a literal's closing quote. The suffix is part of the
  /// literal token, not a separate identifier: rules tracking variable
  /// names must never see `sv` or `_km` as a name.
  void udlSuffix() {
    while (!atEnd() && isIdentChar(cur())) {
      emitSan(cur());
      ++I;
    }
  }

  /// Consumes a plain "..." string literal, emitting "" to the sanitized
  /// view and a String token with the contents.
  void stringLit() {
    int StartLine = Line;
    emitSan('"');
    ++I; // opening quote
    std::string Text;
    while (!atEnd() && cur() != '\n') {
      if (cur() == '\\' && I + 1 < Src.size()) {
        Text += Src[I];
        Text += Src[I + 1];
        I += 2;
        continue;
      }
      if (cur() == '"') {
        ++I;
        emitSan('"');
        udlSuffix();
        push(TokKind::String, StartLine, std::move(Text));
        return;
      }
      Text += cur();
      ++I;
    }
    // Unterminated (or multi-line via splice, which we do not support):
    // emit what we have.
    push(TokKind::String, StartLine, std::move(Text));
  }

  /// Consumes R"delim(...)delim", possibly spanning lines. The delimiter
  /// may itself contain quotes (any character but parentheses, backslash
  /// and whitespace is a valid d-char), so the terminator is matched as
  /// the full )delim" sequence — never by scanning for a bare quote.
  void rawStringLit() {
    int StartLine = Line;
    emitSan('"');
    I += 2; // R"
    std::string Delim;
    while (!atEnd() && cur() != '(' && cur() != '\n') {
      Delim += cur();
      ++I;
    }
    if (!atEnd() && cur() == '(')
      ++I; // (
    std::string Term = ")" + Delim + "\"";
    std::string Text;
    while (!atEnd()) {
      if (Src.compare(I, Term.size(), Term) == 0) {
        I += Term.size();
        emitSan('"');
        udlSuffix();
        push(TokKind::String, StartLine, std::move(Text));
        return;
      }
      Text += cur();
      advance();
    }
    push(TokKind::String, StartLine, std::move(Text));
  }

  /// Consumes a 'x' character literal. Contents are dropped (like the
  /// lint sanitizer always did) but the quotes stay in the sanitized
  /// view, so `f('x')` sanitizes to `f('')` rather than gluing the
  /// neighbours together.
  void charLit() {
    int StartLine = Line;
    emitSan('\'');
    ++I; // opening quote
    while (!atEnd() && cur() != '\n') {
      if (cur() == '\\' && I + 1 < Src.size()) {
        I += 2;
        continue;
      }
      if (cur() == '\'') {
        ++I;
        emitSan('\'');
        udlSuffix();
        break;
      }
      ++I;
    }
    push(TokKind::CharLit, StartLine, "");
  }

  void identifier() {
    int StartLine = Line;
    size_t Start = I;
    while (!atEnd() && isIdentChar(cur())) {
      emitSan(cur());
      ++I;
    }
    push(TokKind::Ident, StartLine, Src.substr(Start, I - Start));
  }

  void number() {
    int StartLine = Line;
    size_t Start = I;
    while (!atEnd()) {
      char C = cur();
      if (isIdentChar(C) || C == '.') {
        // Exponent signs: 1e-5, 0x1p+3.
        if ((C == 'e' || C == 'E' || C == 'p' || C == 'P') &&
            (peek() == '+' || peek() == '-')) {
          emitSan(C);
          ++I;
          emitSan(cur());
          ++I;
          continue;
        }
        emitSan(C);
        ++I;
        continue;
      }
      // Digit separator, but only between digits: 1'000'000.
      if (C == '\'' && isIdentChar(peek())) {
        emitSan(C);
        ++I;
        continue;
      }
      break;
    }
    push(TokKind::Number, StartLine, Src.substr(Start, I - Start));
  }

  /// Handles a preprocessor directive starting at the current '#'.
  void directive() {
    int StartLine = Line;
    emitSan('#');
    ++I;
    while (!atEnd() && (cur() == ' ' || cur() == '\t')) {
      emitSan(cur());
      ++I;
    }
    std::string Name;
    while (!atEnd() && isIdentChar(cur())) {
      Name += cur();
      emitSan(cur());
      ++I;
    }
    if (Name != "include") {
      if (!Name.empty())
        push(TokKind::Directive, StartLine, Name);
      return; // rest of the line tokenizes normally
    }
    while (!atEnd() && (cur() == ' ' || cur() == '\t')) {
      emitSan(cur());
      ++I;
    }
    if (atEnd())
      return;
    char Open = cur();
    if (Open != '"' && Open != '<') {
      push(TokKind::Directive, StartLine, Name);
      return; // computed include (macro); not our concern
    }
    char Close = Open == '"' ? '"' : '>';
    emitSan(Open);
    ++I;
    // Include targets stay visible in the sanitized view (they are code,
    // not data): the raw-assert rule matches "#include <cassert>" there.
    std::string Target;
    while (!atEnd() && cur() != Close && cur() != '\n') {
      Target += cur();
      emitSan(cur());
      ++I;
    }
    if (!atEnd() && cur() == Close) {
      emitSan(Close);
      ++I;
    }
    push(TokKind::Include, StartLine, Target, /*System=*/Open == '<');
  }

  /// Emits a punctuation token, combining the multi-char operators the
  /// rules care about (::, ->, <<, >>). Template brackets stay single so
  /// matchForward can count them; '>>' is handled there as two closers.
  void punct() {
    int StartLine = Line;
    char C = cur();
    std::string Text(1, C);
    char N = peek();
    if ((C == ':' && N == ':') || (C == '-' && N == '>') ||
        (C == '<' && N == '<') || (C == '>' && N == '>'))
      Text += N;
    for (char E : Text)
      emitSan(E);
    I += Text.size();
    if (Text == "{")
      ++PendingBrace;
    else if (Text == "}")
      BraceDepth = BraceDepth > 0 ? BraceDepth - 1 : 0;
    else if (Text == "(")
      ++PendingParen;
    else if (Text == ")")
      ParenDepth = ParenDepth > 0 ? ParenDepth - 1 : 0;
    push(TokKind::Punct, StartLine, Text);
    BraceDepth += PendingBrace;
    ParenDepth += PendingParen;
    PendingBrace = PendingParen = 0;
  }

  void step() {
    char C = cur();
    if (C == '\n') {
      advance();
      return;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == '\f' || C == '\v') {
      emitSan(C == '\r' ? ' ' : C);
      ++I;
      return;
    }
    if (C == '/' && (peek() == '/' || peek() == '*')) {
      comment();
      return;
    }
    if (AtLineStart && C == '#') {
      AtLineStart = false;
      directive();
      return;
    }
    AtLineStart = false;
    // Literal prefixes: an optional encoding prefix (u8, u, U, L),
    // optionally followed by R for raw strings, in front of a quote.
    // The prefix is consumed as part of the literal so `LR"(a)"` and
    // `u8R"(a)"` lex as one String token rather than an identifier
    // followed by a mis-parsed plain string.
    if (I == 0 || !isIdentChar(Src[I - 1])) {
      size_t P = I;
      if (Src[P] == 'u' && P + 1 < Src.size() && Src[P + 1] == '8')
        P += 2;
      else if (Src[P] == 'u' || Src[P] == 'U' || Src[P] == 'L')
        P += 1;
      if (P < Src.size() && Src[P] == 'R' && P + 1 < Src.size() &&
          Src[P + 1] == '"') {
        I = P;
        rawStringLit();
        return;
      }
      if (P > I && P < Src.size() && Src[P] == '"') {
        I = P;
        stringLit();
        return;
      }
      if (P > I && P < Src.size() && Src[P] == '\'') {
        I = P;
        charLit();
        return;
      }
    }
    if (C == '"') {
      stringLit();
      return;
    }
    if (C == '\'') {
      charLit();
      return;
    }
    if (isIdentChar(C) && !(C >= '0' && C <= '9')) {
      identifier();
      return;
    }
    if (C >= '0' && C <= '9') {
      number();
      return;
    }
    punct();
  }

  const std::string &Src;
  size_t I = 0;
  int Line = 1;
  bool AtLineStart = true;
  int BraceDepth = 0, ParenDepth = 0;
  int PendingBrace = 0, PendingParen = 0;
  std::string San;
  TokenizedSource Out;
};

} // namespace

TokenizedSource dmb::analyze::tokenize(const std::string &Content) {
  TokenizedSource Out = Scanner(Content).run();
  // Keep the sanitized view aligned with splitLines() of the raw text:
  // one entry per raw line.
  std::vector<std::string> Raw = splitLines(Content);
  while (Out.SanitizedLines.size() < Raw.size())
    Out.SanitizedLines.push_back("");
  if (Out.SanitizedLines.size() > Raw.size())
    Out.SanitizedLines.resize(Raw.size());
  return Out;
}

std::vector<std::string>
dmb::analyze::sanitizeSource(const std::string &Content) {
  return tokenize(Content).SanitizedLines;
}

size_t dmb::analyze::matchForward(const std::vector<Token> &Tokens,
                                  size_t OpenIdx) {
  if (OpenIdx >= Tokens.size() || Tokens[OpenIdx].Kind != TokKind::Punct)
    return Tokens.size();
  const std::string &Open = Tokens[OpenIdx].Text;
  std::string Close;
  if (Open == "(")
    Close = ")";
  else if (Open == "[")
    Close = "]";
  else if (Open == "{")
    Close = "}";
  else if (Open == "<")
    Close = ">";
  else
    return Tokens.size();

  bool Angle = Open == "<";
  int Depth = 1;
  for (size_t I = OpenIdx + 1; I < Tokens.size(); ++I) {
    const Token &T = Tokens[I];
    if (T.Kind != TokKind::Punct)
      continue;
    if (Angle) {
      // A template argument list cannot contain these; bail out so a
      // comparison operator is not chased across the whole file.
      if (T.Text == ";" || T.Text == "{")
        return Tokens.size();
      if (T.Text == "<")
        ++Depth;
      else if (T.Text == ">") {
        if (--Depth == 0)
          return I;
      } else if (T.Text == ">>") {
        Depth -= 2;
        if (Depth <= 0)
          return I;
      } else if (T.Text == "<<")
        Depth += 2;
      continue;
    }
    if (T.Text == Open)
      ++Depth;
    else if (T.Text == Close) {
      if (--Depth == 0)
        return I;
    }
  }
  return Tokens.size();
}
