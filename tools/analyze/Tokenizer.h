//===- tools/analyze/Tokenizer.h - C++ token stream -------------*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-pass C++ tokenizer shared by tools/lint (line-level rules on
/// sanitized text) and tools/analyze (symbol-aware rules on the token
/// stream). One scan of a source file produces both views:
///
///  - Tokens: identifiers, numbers, string/char literals, punctuation and
///    preprocessor directives, each stamped with its 1-based line and the
///    brace/paren nesting depth at its position, so rules can reason about
///    scope extents (loop bodies, capture lists, argument lists) instead
///    of matching raw text.
///  - SanitizedLines: the file line by line with comment text removed and
///    string/char literal contents blanked, so substring rules cannot be
///    tripped by prose or fixture data. Block comments and raw string
///    literals carry state across lines.
///
/// The tokenizer is deliberately not a preprocessor: it does not expand
/// macros or follow includes. `#include` directives are surfaced as
/// dedicated tokens (with the target path and a system/project flag) for
/// the include-graph builder; other directives surface their name and then
/// tokenize their argument text normally, so `#define NAME` yields the
/// macro name as an identifier token.
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_TOKENIZER_H
#define DMETABENCH_TOOLS_ANALYZE_TOKENIZER_H

#include <cstddef>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

enum class TokKind {
  Ident,     ///< identifier or keyword
  Number,    ///< numeric literal (integer or floating, any base)
  String,    ///< string literal; Text holds the *contents* (no quotes)
  CharLit,   ///< character literal; contents dropped
  Punct,     ///< punctuation; multi-char operators ::, ->, <<, >> combined
  Include,   ///< #include directive; Text holds the target path
  Directive, ///< any other preprocessor directive; Text holds its name
};

/// One lexed token. Depth fields record the nesting *surrounding* the
/// token: an opening brace's own BraceDepth is the depth outside it, and
/// the matching closing brace carries the same value.
struct Token {
  TokKind Kind;
  int Line = 0;         ///< 1-based source line of the token's first char
  std::string Text;     ///< spelling (see TokKind for literal handling)
  int BraceDepth = 0;   ///< {} nesting at the token
  int ParenDepth = 0;   ///< () nesting at the token
  bool SystemInclude = false; ///< Include only: <...> rather than "..."
};

/// The two views of one source file produced by a single scan.
struct TokenizedSource {
  std::vector<Token> Tokens;
  std::vector<std::string> SanitizedLines;
};

/// Tokenizes \p Content (one whole file).
TokenizedSource tokenize(const std::string &Content);

/// Splits \p Content into lines (LF or CRLF; final line without newline
/// kept). Shared by the engines so raw and sanitized views line up.
std::vector<std::string> splitLines(const std::string &Content);

/// Sanitized view only — equivalent to tokenize(Content).SanitizedLines.
std::vector<std::string> sanitizeSource(const std::string &Content);

/// True for [A-Za-z0-9_].
bool isIdentChar(char C);

/// Index of the token matching the opener at \p OpenIdx ('(' -> ')',
/// '[' -> ']', '{' -> '}', '<' -> '>' counting '>>' as two closers), or
/// Tokens.size() when unbalanced. For '<' the search gives up on tokens
/// that cannot appear inside a template argument list (';' or '{'), so it
/// is safe to call on a less-than that might not open a template.
size_t matchForward(const std::vector<Token> &Tokens, size_t OpenIdx);

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_TOKENIZER_H
