//===- tools/analyze/ToolMain.cpp -----------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/ToolMain.h"
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace dmb;
using namespace dmb::analyze;

namespace {

void printUsage(std::FILE *To, const ToolConfig &Cfg) {
  std::fprintf(To,
               "usage: %s [--root <dir>] [--rule <name>]... [--json]\n"
               "       %*s [--baseline <file>] [--write-baseline <file>]%s\n\n",
               Cfg.Tool.c_str(), static_cast<int>(Cfg.Tool.size()), "",
               Cfg.WriteDot ? " [--dot <file>]" : "");
  std::fprintf(To, "%s\n\nrules:\n", Cfg.Description.c_str());
  for (const std::string &R : Cfg.Rules)
    std::fprintf(To, "  %s\n", R.c_str());
  std::fprintf(To,
               "\nexit codes: 0 clean, 1 findings, 2 usage error, 3 no "
               "sources under --root\n");
}

/// Parses a baseline file into a key -> count multiset. Returns false on
/// I/O failure.
bool loadBaseline(const std::string &Path, std::map<std::string, int> &Keys) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line;
  while (std::getline(In, Line)) {
    // Trim trailing CR/whitespace; '#' starts a comment line.
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    ++Keys[Line];
  }
  return true;
}

} // namespace

std::string dmb::analyze::baselineKey(const Finding &F) {
  return F.File + " [" + F.Rule + "] " + F.Message;
}

int dmb::analyze::toolMain(int Argc, char **Argv, const ToolConfig &Cfg) {
  std::string Root = ".";
  std::set<std::string> RuleFilter;
  std::string BaselinePath, WriteBaselinePath, DotPath;
  bool Json = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout, Cfg);
      return 0;
    }
    if (Arg == "--json") {
      Json = true;
      continue;
    }
    if (Arg == "--root" || Arg == "--rule" || Arg == "--baseline" ||
        Arg == "--write-baseline" || Arg == "--dot") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", Cfg.Tool.c_str(),
                     Arg.c_str());
        printUsage(stderr, Cfg);
        return 2;
      }
      std::string Val = Argv[++I];
      if (Arg == "--root") {
        Root = Val;
      } else if (Arg == "--baseline") {
        BaselinePath = Val;
      } else if (Arg == "--write-baseline") {
        WriteBaselinePath = Val;
      } else if (Arg == "--dot") {
        if (!Cfg.WriteDot) {
          std::fprintf(stderr, "%s: --dot is not supported by this tool\n",
                       Cfg.Tool.c_str());
          return 2;
        }
        DotPath = Val;
      } else {
        if (std::find(Cfg.Rules.begin(), Cfg.Rules.end(), Val) ==
            Cfg.Rules.end()) {
          std::fprintf(stderr, "%s: unknown rule '%s'\n", Cfg.Tool.c_str(),
                       Val.c_str());
          printUsage(stderr, Cfg);
          return 2;
        }
        RuleFilter.insert(Val);
      }
      continue;
    }
    std::fprintf(stderr, "%s: unknown argument '%s'\n", Cfg.Tool.c_str(),
                 Arg.c_str());
    printUsage(stderr, Cfg);
    return 2;
  }

  // The baseline must parse before the (possibly slow) scan runs.
  std::map<std::string, int> Baseline;
  if (!BaselinePath.empty() && !loadBaseline(BaselinePath, Baseline)) {
    std::fprintf(stderr, "%s: cannot read baseline '%s'\n", Cfg.Tool.c_str(),
                 BaselinePath.c_str());
    return 2;
  }

  size_t FilesChecked = 0;
  std::vector<Finding> Findings = Cfg.Run(Root, FilesChecked);
  if (FilesChecked == 0) {
    std::fprintf(stderr, "%s: no sources found under '%s'\n", Cfg.Tool.c_str(),
                 Root.c_str());
    return 3;
  }

  if (!DotPath.empty()) {
    std::ofstream Dot(DotPath);
    if (!Dot || !Cfg.WriteDot(Root, Dot)) {
      std::fprintf(stderr, "%s: cannot write call graph to '%s'\n",
                   Cfg.Tool.c_str(), DotPath.c_str());
      return 2;
    }
    std::fprintf(stderr, "%s: call graph written to %s\n", Cfg.Tool.c_str(),
                 DotPath.c_str());
  }

  if (!RuleFilter.empty()) {
    Findings.erase(std::remove_if(Findings.begin(), Findings.end(),
                                  [&](const Finding &F) {
                                    return !RuleFilter.count(F.Rule);
                                  }),
                   Findings.end());
  }

  if (!WriteBaselinePath.empty()) {
    std::ofstream Out(WriteBaselinePath);
    if (!Out) {
      std::fprintf(stderr, "%s: cannot write baseline '%s'\n",
                   Cfg.Tool.c_str(), WriteBaselinePath.c_str());
      return 2;
    }
    Out << "# " << Cfg.Tool
        << " baseline: one accepted finding per line, \"file [rule] "
           "message\".\n";
    Out << "# Line numbers are omitted on purpose; regenerate with:\n";
    Out << "#   " << Cfg.Tool << " --write-baseline <this file>\n";
    for (const Finding &F : Findings)
      Out << baselineKey(F) << "\n";
    std::fprintf(stderr, "%s: %zu finding%s recorded to %s\n",
                 Cfg.Tool.c_str(), Findings.size(),
                 Findings.size() == 1 ? "" : "s", WriteBaselinePath.c_str());
    return 0;
  }

  size_t Known = 0;
  if (!Baseline.empty()) {
    Findings.erase(std::remove_if(Findings.begin(), Findings.end(),
                                  [&](const Finding &F) {
                                    auto It = Baseline.find(baselineKey(F));
                                    if (It == Baseline.end() ||
                                        It->second == 0)
                                      return false;
                                    --It->second;
                                    ++Known;
                                    return true;
                                  }),
                   Findings.end());
  }

  if (Json) {
    std::fputs(renderFindingsJson(Cfg.Tool, FilesChecked, Findings).c_str(),
               stdout);
    std::fputc('\n', stdout);
  } else {
    for (const Finding &F : Findings)
      std::fprintf(stdout, "%s\n", renderFinding(F).c_str());
    if (Known > 0)
      std::fprintf(stderr,
                   "%s: %zu file%s checked, %zu new finding%s (%zu known "
                   "from baseline)\n",
                   Cfg.Tool.c_str(), FilesChecked, FilesChecked == 1 ? "" : "s",
                   Findings.size(), Findings.size() == 1 ? "" : "s", Known);
    else
      std::fprintf(stderr,
                   "%s: %zu file%s checked, %zu finding%s\n", Cfg.Tool.c_str(),
                   FilesChecked, FilesChecked == 1 ? "" : "s", Findings.size(),
                   Findings.size() == 1 ? "" : "s");
  }
  return Findings.empty() ? 0 : 1;
}
