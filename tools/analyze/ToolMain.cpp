//===- tools/analyze/ToolMain.cpp -----------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analyze/ToolMain.h"
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

using namespace dmb;
using namespace dmb::analyze;

namespace {

void printUsage(std::FILE *To, const ToolConfig &Cfg) {
  std::fprintf(To, "usage: %s [--root <dir>] [--rule <name>]... [--json]\n\n",
               Cfg.Tool.c_str());
  std::fprintf(To, "%s\n\nrules:\n", Cfg.Description.c_str());
  for (const std::string &R : Cfg.Rules)
    std::fprintf(To, "  %s\n", R.c_str());
  std::fprintf(To,
               "\nexit codes: 0 clean, 1 findings, 2 usage error, 3 no "
               "sources under --root\n");
}

} // namespace

int dmb::analyze::toolMain(int Argc, char **Argv, const ToolConfig &Cfg) {
  std::string Root = ".";
  std::set<std::string> RuleFilter;
  bool Json = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout, Cfg);
      return 0;
    }
    if (Arg == "--json") {
      Json = true;
      continue;
    }
    if (Arg == "--root" || Arg == "--rule") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", Cfg.Tool.c_str(),
                     Arg.c_str());
        printUsage(stderr, Cfg);
        return 2;
      }
      std::string Val = Argv[++I];
      if (Arg == "--root") {
        Root = Val;
      } else {
        if (std::find(Cfg.Rules.begin(), Cfg.Rules.end(), Val) ==
            Cfg.Rules.end()) {
          std::fprintf(stderr, "%s: unknown rule '%s'\n", Cfg.Tool.c_str(),
                       Val.c_str());
          printUsage(stderr, Cfg);
          return 2;
        }
        RuleFilter.insert(Val);
      }
      continue;
    }
    std::fprintf(stderr, "%s: unknown argument '%s'\n", Cfg.Tool.c_str(),
                 Arg.c_str());
    printUsage(stderr, Cfg);
    return 2;
  }

  size_t FilesChecked = 0;
  std::vector<Finding> Findings = Cfg.Run(Root, FilesChecked);
  if (FilesChecked == 0) {
    std::fprintf(stderr, "%s: no sources found under '%s'\n", Cfg.Tool.c_str(),
                 Root.c_str());
    return 3;
  }

  if (!RuleFilter.empty()) {
    Findings.erase(std::remove_if(Findings.begin(), Findings.end(),
                                  [&](const Finding &F) {
                                    return !RuleFilter.count(F.Rule);
                                  }),
                   Findings.end());
  }

  if (Json) {
    std::fputs(renderFindingsJson(Cfg.Tool, FilesChecked, Findings).c_str(),
               stdout);
    std::fputc('\n', stdout);
  } else {
    for (const Finding &F : Findings)
      std::fprintf(stdout, "%s\n", renderFinding(F).c_str());
    std::fprintf(stderr, "%s: %zu file%s checked, %zu finding%s\n",
                 Cfg.Tool.c_str(), FilesChecked, FilesChecked == 1 ? "" : "s",
                 Findings.size(), Findings.size() == 1 ? "" : "s");
  }
  return Findings.empty() ? 0 : 1;
}
