//===- tools/analyze/ToolMain.h - Shared check-tool CLI ---------*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line front end shared by dmeta-lint and dmeta-analyze, so
/// the two tools agree on flags, output formats and exit codes:
///
///   --root <dir>            repo root to scan (default: current directory)
///   --rule <name>           only report this rule; repeatable
///   --json                  machine-readable output (one JSON object)
///   --baseline <file>       drop findings recorded in <file>; exit
///                           nonzero only on NEW findings (adopting a
///                           rule on a tree with accepted debt)
///   --write-baseline <file> record current findings to <file>, exit 0
///   --dot <file>            write the call graph as Graphviz dot
///                           (tools that build one; usage error otherwise)
///   --help                  usage
///
/// Baseline format: one finding per line as "file [rule] message" — the
/// line number is deliberately omitted so unrelated edits above a known
/// finding do not invalidate the baseline. '#' lines and blank lines are
/// comments. Entries match findings as a multiset: two identical known
/// findings need two entries.
///
/// Exit codes:
///   0  clean (no findings after --rule/--baseline filtering)
///   1  findings reported
///   2  usage error (unknown flag, missing value, unknown rule name,
///      unreadable --baseline file, --dot on a tool without a graph)
///   3  no sources found under --root (an empty scan is a misconfigured
///      invocation, not a clean tree — distinct from 2 so CI can tell a
///      bad flag from a bad checkout)
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_ANALYZE_TOOLMAIN_H
#define DMETABENCH_TOOLS_ANALYZE_TOOLMAIN_H

#include "analyze/Diagnostics.h"
#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace dmb {
namespace analyze {

/// What a concrete tool plugs into the shared front end.
struct ToolConfig {
  std::string Tool;        ///< binary name for usage and JSON ("dmeta-lint")
  std::string Description; ///< one-line purpose for --help
  std::vector<std::string> Rules; ///< valid --rule values
  /// Runs the scan rooted at \p Root; sets \p FilesChecked.
  std::function<std::vector<Finding>(const std::string &Root,
                                     size_t &FilesChecked)>
      Run;
  /// Writes the tool's call graph as Graphviz dot (--dot); tools without
  /// a graph leave this unset and --dot becomes a usage error. Returns
  /// false when the tree under \p Root yields nothing to graph.
  std::function<bool(const std::string &Root, std::ostream &OS)> WriteDot;
};

/// Baseline matching key for a finding: "file [rule] message". The line
/// number is omitted so edits above a known finding do not invalidate
/// the baseline entry.
std::string baselineKey(const Finding &F);

/// Parses argv, runs the tool, prints findings; returns the exit code
/// documented above.
int toolMain(int Argc, char **Argv, const ToolConfig &Cfg);

} // namespace analyze
} // namespace dmb

#endif // DMETABENCH_TOOLS_ANALYZE_TOOLMAIN_H
