#!/usr/bin/env python3
"""Guard the clients-vs-throughput scale curve against regressions.

Compares a freshly measured BENCH_engine.json against the committed one
and fails (exit 1) when any shared curve point regressed by more than the
threshold (default 10%).

Raw wall-clock numbers are machine-dependent, so the comparison is
host-normalized: each curve point's events/sec is divided by the same
run's raw-scheduler events/sec before comparing ratios. A slower CI
runner scales both numbers down together; a real scale-out regression
(e.g. an accidental O(n log n) step at large client counts) shows up as a
drop in the ratio at the affected points only.

Usage:
  tools/check_scale_regression.py --baseline BENCH_engine.json \
      --measured build/BENCH_engine.json [--threshold 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def normalized_curve(doc):
    """Map clients -> curve events/sec divided by raw-scheduler events/sec."""
    raw = doc.get("raw_scheduler", {}).get("events_per_sec", 0)
    if not raw:
        return {}
    out = {}
    for pt in doc.get("scale_curve", []):
        if pt.get("events_per_sec") and pt.get("clients"):
            out[int(pt["clients"])] = pt["events_per_sec"] / raw
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_engine.json")
    ap.add_argument("--measured", required=True,
                    help="freshly measured BENCH_engine.json")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional regression per point")
    args = ap.parse_args()

    base = normalized_curve(load(args.baseline))
    got = normalized_curve(load(args.measured))
    if not base:
        print("check_scale_regression: baseline has no scale curve; "
              "nothing to guard")
        return 0

    shared = sorted(set(base) & set(got))
    if not shared:
        print("check_scale_regression: no shared curve points between "
              "baseline and measured runs", file=sys.stderr)
        return 1

    failed = False
    for clients in shared:
        ratio = got[clients] / base[clients]
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSED"
            failed = True
        print(f"  {clients:>8} clients: normalized {got[clients]:.4f} vs "
              f"baseline {base[clients]:.4f} ({ratio:.2%}) {status}")

    if failed:
        print(f"check_scale_regression: scale curve regressed more than "
              f"{args.threshold:.0%} at one or more points", file=sys.stderr)
        return 1
    print(f"check_scale_regression: {len(shared)} shared points within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
