//===- tools/dmeta-analyze.cpp - Symbol-aware static analyzer -------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Driver for the symbol-aware analyzer: determinism (unordered-iteration,
/// pointer-identity), lifetime (callback-lifetime), error discipline
/// (discarded-error, nodiscard-annotation), interprocedural dataflow
/// (determinism-taint, error-path-propagation, blocking-in-callback over
/// the whole-program symbol table and call graph) and architecture
/// (layering, include-cycle, unused-include) rules over src/, tests/,
/// bench/ and tools/. `--dot <file>` exports the call graph. See
/// tools/analyze/AnalyzeEngine.h for the rule catalogue and DESIGN.md
/// ("Static analysis") for the rationale.
///
//===----------------------------------------------------------------------===//

#include "analyze/AnalyzeEngine.h"
#include "analyze/ToolMain.h"

int main(int Argc, char **Argv) {
  dmb::analyze::ToolConfig Cfg;
  Cfg.Tool = "dmeta-analyze";
  Cfg.Description =
      "Symbol-aware determinism, lifetime and layering checks for the "
      "DMetabench tree.";
  Cfg.Rules = dmb::analyze::analyzeRuleNames();
  Cfg.Run = [](const std::string &Root, size_t &FilesChecked) {
    return dmb::analyze::analyzeTree(Root, &FilesChecked);
  };
  Cfg.WriteDot = [](const std::string &Root, std::ostream &OS) {
    return dmb::analyze::writeCallGraphDot(Root, OS);
  };
  return dmb::analyze::toolMain(Argc, Argv, Cfg);
}
