//===- tools/dmeta-lint.cpp - Repo invariant lint driver ------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for tools/lint/LintEngine: walks src/, tests/,
/// bench/ and tools/ and exits nonzero on any determinism or hygiene
/// violation. Registered as a ctest, so `ctest` and the `check` target
/// fail on lint findings exactly like on a failing unit test. Flags,
/// output formats and exit codes come from the front end shared with
/// dmeta-analyze (tools/analyze/ToolMain.h) — in particular, a usage
/// error exits 2 while an empty scan exits 3, so CI can tell a bad flag
/// from a bad checkout.
///
//===----------------------------------------------------------------------===//

#include "analyze/ToolMain.h"
#include "lint/LintEngine.h"

int main(int Argc, char **Argv) {
  dmb::analyze::ToolConfig Cfg;
  Cfg.Tool = "dmeta-lint";
  Cfg.Description =
      "Line-level determinism and hygiene checks for the DMetabench tree "
      "(see tools/lint/LintEngine.h for the rule list).";
  Cfg.Rules = dmb::lint::lintRuleNames();
  Cfg.Run = [](const std::string &Root, size_t &FilesChecked) {
    return dmb::lint::lintTree(Root, &FilesChecked);
  };
  return dmb::analyze::toolMain(Argc, Argv, Cfg);
}
