//===- tools/dmeta-lint.cpp - Repo invariant lint driver ------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for tools/lint/LintEngine: walks src/, tests/
/// and bench/ and exits nonzero on any determinism or hygiene violation.
/// Registered as a ctest, so `ctest` and the `check` target fail on lint
/// findings exactly like on a failing unit test.
///
///   dmeta-lint [--root <repo-root>]     (default: current directory)
///
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include <cstdio>
#include <cstring>
#include <string>

int main(int Argc, char **Argv) {
  std::string Root = ".";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--root") == 0 && I + 1 < Argc) {
      Root = Argv[++I];
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      std::printf("usage: dmeta-lint [--root <repo-root>]\n"
                  "Checks determinism and hygiene invariants of the "
                  "DMetabench tree\n(see tools/lint/LintEngine.h for the "
                  "rule list). Exits 1 on violations.\n");
      return 0;
    } else {
      std::fprintf(stderr, "dmeta-lint: unknown argument '%s'\n", Argv[I]);
      return 2;
    }
  }

  size_t FilesChecked = 0;
  std::vector<dmb::lint::Violation> Violations =
      dmb::lint::lintTree(Root, &FilesChecked);

  if (FilesChecked == 0) {
    std::fprintf(stderr,
                 "dmeta-lint: no sources found under '%s' (wrong --root?)\n",
                 Root.c_str());
    return 2;
  }
  for (const dmb::lint::Violation &V : Violations)
    std::fprintf(stderr, "%s\n", dmb::lint::renderViolation(V).c_str());
  if (!Violations.empty()) {
    std::fprintf(stderr, "dmeta-lint: %zu violation(s) in %zu files\n",
                 Violations.size(), FilesChecked);
    return 1;
  }
  std::printf("dmeta-lint: %zu files clean\n", FilesChecked);
  return 0;
}
