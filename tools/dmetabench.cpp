//===- tools/dmetabench.cpp - Command-line front end ----------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dmetabench command-line tool, mirroring the invocation of thesis
/// Listing 3.2 on the simulated cluster:
///
///   dmetabench --np 15 --nodes 5 --fs nfs
///       --ppnstep 5 --problemsize 10000
///       --operations MakeFiles,StatFiles
///       --workdir /mnt/nfs/testdirectory
///       --label first-nfs-benchmark --outdir results
///
/// (one shell command; wrapped here because a trailing backslash in a //
/// comment is a -Wcomment line splice).
///
/// Runs the full execution plan, prints Listing 3.5-style summaries and a
/// chart, and writes the result files of \S 3.3.9 to --outdir.
///
/// The "trace" verb (dmetabench trace [options]) runs the same plan with
/// an operation trace sink attached and additionally prints the per-op
/// latency report (p50/p95/p99/max plus the span breakdown) and the
/// latency-breakdown chart; --outdir then also receives trace.txt.
///
/// The "verify-schedules" verb (dmetabench verify-schedules [--schedules N]
/// [--seed S]) reruns built-in tier-1 scenarios under N permuted
/// same-timestamp schedules (sim/ScheduleVerify.h) and fails if any
/// rerun's interval TSVs or summaries differ from the default schedule.
///
/// The "verify-queues" verb runs tier-1 scenarios for six file system
/// models once on the binary-heap event queue and once per calendar-queue
/// variant (the default wheel plus a shallow wheel that forces overflow
/// traffic), and fails unless output *and* the executed-event journal are
/// bit-identical — the two queue implementations must produce the same
/// schedule, not merely the same results.
///
//===----------------------------------------------------------------------===//

#include "core/ResultsIO.h"
#include "dmetabench/DMetabench.h"
#include "support/Format.h"
#include "support/TextTable.h"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace dmb;

namespace {

struct CliOptions {
  unsigned Np = 9;             ///< total MPI slots
  unsigned Nodes = 3;          ///< cluster nodes
  unsigned Cores = 8;          ///< cores per node
  std::string Fs = "nfs";      ///< nfs|lustre|lustre-wb|cxfs|afs|gx|sharded|localfs
  unsigned Volumes = 8;        ///< volumes for afs/gx
  double LatencyUs = 0;        ///< override one-way RPC latency (0 = keep)
  bool Extensions = false;     ///< register extension plugins
  bool Chart = false;          ///< render a scaling chart
  std::string OutDir;          ///< write result files here
  BenchParams Params;
};

void usage() {
  std::fputs(
      "usage: dmetabench [trace|verify-schedules|verify-queues] [options]\n"
      "  trace                record per-operation span traces and print\n"
      "                       the latency report and breakdown chart\n"
      "  verify-schedules     rerun built-in tier-1 scenarios under\n"
      "                       permuted same-timestamp schedules and check\n"
      "                       bit-identical results (options: --schedules N\n"
      "                       [default 8], --seed S [default 1])\n"
      "  verify-queues        run tier-1 scenarios on the heap and the\n"
      "                       calendar event queue and check bit-identical\n"
      "                       outputs and event journals (option:\n"
      "                       --shallow-levels N [default 2])\n"
      "  --np N               total MPI slots (default 9)\n"
      "  --nodes N            cluster nodes (default 3)\n"
      "  --cores N            cores per node (default 8)\n"
      "  --fs NAME            nfs|lustre|lustre-wb|cxfs|afs|gx|sharded|localfs\n"
      "  --volumes N          volumes for afs/gx (default 8)\n"
      "  --latency-us X       override one-way RPC latency (nfs/lustre)\n"
      "  --operations A,B     plugin list (default MakeFiles)\n"
      "  --problemsize N      ops per process / dir rollover (default 5000)\n"
      "  --timelimit SEC      MakeFiles-family budget (default 60)\n"
      "  --ppnstep N          processes-per-node step (default 1)\n"
      "  --nodestep N         node-count step (default 1)\n"
      "  --workdir PATH       shared working directory\n"
      "  --pathlist A,B,...   per-process working paths\n"
      "  --label NAME         result-set label\n"
      "  --outdir DIR         write results-*.tsv / summary.tsv there\n"
      "  --extensions         register BulkStatFiles/ReaddirFiles\n"
      "  --chart              print a performance-vs-processes chart\n"
      "  --list-operations    print registered plugins and exit\n",
      stderr);
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opt) {
  auto Value = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Argv[I]);
      return nullptr;
    }
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      std::exit(0);
    }
    if (!std::strcmp(Arg, "--list-operations")) {
      registerExtensionPlugins(PluginRegistry::global());
      for (const std::string &Name : PluginRegistry::global().names())
        std::printf("%s\n", Name.c_str());
      std::exit(0);
    }
    if (!std::strcmp(Arg, "--extensions")) {
      Opt.Extensions = true;
    } else if (!std::strcmp(Arg, "--chart")) {
      Opt.Chart = true;
    } else if (!std::strcmp(Arg, "--np")) {
      if (!(V = Value(I)))
        return false;
      Opt.Np = std::strtoul(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "--nodes")) {
      if (!(V = Value(I)))
        return false;
      Opt.Nodes = std::strtoul(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "--cores")) {
      if (!(V = Value(I)))
        return false;
      Opt.Cores = std::strtoul(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "--fs")) {
      if (!(V = Value(I)))
        return false;
      Opt.Fs = V;
    } else if (!std::strcmp(Arg, "--volumes")) {
      if (!(V = Value(I)))
        return false;
      Opt.Volumes = std::strtoul(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "--latency-us")) {
      if (!(V = Value(I)))
        return false;
      Opt.LatencyUs = std::strtod(V, nullptr);
    } else if (!std::strcmp(Arg, "--operations")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.Operations = split(V, ',');
    } else if (!std::strcmp(Arg, "--problemsize")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.ProblemSize = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "--timelimit")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.TimeLimit = seconds(std::strtod(V, nullptr));
    } else if (!std::strcmp(Arg, "--ppnstep")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.PpnStep = std::strtoul(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "--nodestep")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.NodeStep = std::strtoul(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "--workdir")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.WorkDir = V;
    } else if (!std::strcmp(Arg, "--pathlist")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.PathList = split(V, ',');
    } else if (!std::strcmp(Arg, "--label")) {
      if (!(V = Value(I)))
        return false;
      Opt.Params.Label = V;
    } else if (!std::strcmp(Arg, "--outdir")) {
      if (!(V = Value(I)))
        return false;
      Opt.OutDir = V;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", Arg);
      usage();
      return false;
    }
  }
  return true;
}

/// Builds the requested file system model; returns its mount name.
std::unique_ptr<DistributedFs> makeFs(Scheduler &S, const CliOptions &Opt) {
  if (Opt.Fs == "nfs") {
    NfsOptions O;
    if (Opt.LatencyUs > 0)
      O.Client.Net.OneWayLatency = static_cast<SimDuration>(Opt.LatencyUs * 1000);
    return std::make_unique<NfsFs>(S, O);
  }
  if (Opt.Fs == "lustre" || Opt.Fs == "lustre-wb") {
    LustreOptions O;
    O.WritebackMetadata = Opt.Fs == "lustre-wb";
    if (Opt.LatencyUs > 0)
      O.Client.Net.OneWayLatency = static_cast<SimDuration>(Opt.LatencyUs * 1000);
    return std::make_unique<LustreFs>(S, O);
  }
  if (Opt.Fs == "cxfs")
    return std::make_unique<CxfsFs>(S);
  if (Opt.Fs == "afs") {
    auto Cell = std::make_unique<AfsFs>(S);
    Cell->setupUniform(std::max(1u, Opt.Volumes / 2), 2);
    return Cell;
  }
  if (Opt.Fs == "gx") {
    auto Gx = std::make_unique<GxFs>(S);
    Gx->setupUniformVolumes(Opt.Volumes);
    return Gx;
  }
  if (Opt.Fs == "sharded") {
    ShardedOptions O;
    if (Opt.LatencyUs > 0)
      O.Client.Net.OneWayLatency = static_cast<SimDuration>(Opt.LatencyUs * 1000);
    return std::make_unique<ShardedFs>(S, O);
  }
  if (Opt.Fs == "localfs")
    return std::make_unique<LocalFsModel>(S);
  return nullptr;
}

/// One built-in scenario for the verify-schedules verb: a small tier-1
/// benchmark combination rendered through canonicalResultText().
ScheduleScenario makeVerifyScenario(std::string Name, std::string FsName,
                                    std::vector<std::string> Ops,
                                    uint64_t ProblemSize, unsigned Nodes,
                                    unsigned Ppn) {
  ScheduleScenario Sc;
  Sc.Name = std::move(Name);
  Sc.Run = [FsName = std::move(FsName), Ops = std::move(Ops), ProblemSize,
            Nodes, Ppn](Scheduler &S) {
    Cluster C(S, Nodes, 4);
    CliOptions Opt;
    Opt.Fs = FsName;
    std::unique_ptr<DistributedFs> Fs = makeFs(S, Opt);
    C.mountEverywhere(*Fs);
    BenchParams P;
    P.Operations = Ops;
    P.ProblemSize = ProblemSize;
    P.TimeLimit = seconds(2.0);
    // One extra rank per node: rank 0 becomes the master (§3.3.4) and is
    // not placeable as a worker.
    MpiEnvironment Env = MpiEnvironment::uniform(Nodes, Ppn + 1);
    Master M(C, Env, Fs->name(), P);
    ResultSet Res = M.runCombination(Nodes, Ppn);
    return canonicalResultText(Res);
  };
  return Sc;
}

int runVerifySchedules(int Argc, char **Argv) {
  ScheduleVerifyOptions Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return 0;
    }
    if (!std::strcmp(Arg, "--schedules") && I + 1 < Argc) {
      Opt.Schedules = std::strtoul(Argv[++I], nullptr, 10);
    } else if (!std::strcmp(Arg, "--seed") && I + 1 < Argc) {
      Opt.BaseSeed = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown verify-schedules option %s\n",
                   Arg);
      usage();
      return 2;
    }
  }
  // The tier-1 scenarios of tests/IntegrationTest.cpp in miniature: the
  // protocol-mediated baseline and the writeback variant whose consistency
  // points add background timer traffic.
  std::vector<ScheduleScenario> Scenarios;
  Scenarios.push_back(makeVerifyScenario("nfs-makefiles-statfiles", "nfs",
                                         {"MakeFiles", "StatFiles"}, 300, 2,
                                         2));
  Scenarios.push_back(makeVerifyScenario("lustre-makefiles", "lustre",
                                         {"MakeFiles"}, 300, 2, 2));
  bool AllOk = true;
  for (const ScheduleScenario &Sc : Scenarios) {
    ScheduleVerifyResult R = verifySchedules(Sc, Opt);
    std::printf("verify-schedules: %s\n", R.Report.c_str());
    AllOk = AllOk && R.passed();
  }
  return AllOk ? 0 : 1;
}

/// One run of a scenario under an explicit scheduler configuration,
/// capturing both the canonical output and the executed-event journal.
struct QueueRunOutcome {
  std::string Output;
  std::vector<Scheduler::JournalEntry> Journal;
};

QueueRunOutcome runQueueOnce(const ScheduleScenario &Sc,
                             const SchedulerConfig &Config) {
  Scheduler S(Config);
  S.enableEventJournal();
  QueueRunOutcome Out;
  Out.Output = Sc.Run(S);
  Out.Journal = S.eventJournal();
  return Out;
}

int runVerifyQueues(int Argc, char **Argv) {
  unsigned ShallowLevels = 2;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return 0;
    }
    if (!std::strcmp(Arg, "--shallow-levels") && I + 1 < Argc) {
      ShallowLevels = std::strtoul(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown verify-queues option %s\n", Arg);
      usage();
      return 2;
    }
  }
  // One small tier-1 combination per model family. The shallow wheel keeps
  // only ShallowLevels byte levels, so second-scale timers overflow and the
  // drain/migrate path runs under real traffic, not just unit tests.
  std::vector<ScheduleScenario> Scenarios;
  for (const char *FsName :
       {"nfs", "lustre", "afs", "gx", "cxfs", "localfs"})
    Scenarios.push_back(makeVerifyScenario(std::string(FsName) + "-makefiles",
                                           FsName, {"MakeFiles"}, 200, 2, 2));

  SchedulerConfig Heap;
  SchedulerConfig Calendar;
  Calendar.Queue = EventQueueKind::Calendar;
  SchedulerConfig Shallow = Calendar;
  Shallow.WheelLevels = ShallowLevels;

  bool AllOk = true;
  for (const ScheduleScenario &Sc : Scenarios) {
    QueueRunOutcome Base = runQueueOnce(Sc, Heap);
    if (Base.Output.empty()) {
      std::printf("verify-queues: %s produced no output; refusing to "
                  "verify an empty result\n",
                  Sc.Name.c_str());
      AllOk = false;
      continue;
    }
    struct Variant {
      const char *Label;
      const SchedulerConfig *Config;
    } Variants[] = {{"calendar", &Calendar}, {"calendar-shallow", &Shallow}};
    bool Ok = true;
    for (const Variant &V : Variants) {
      QueueRunOutcome Got = runQueueOnce(Sc, *V.Config);
      if (Got.Output != Base.Output || Got.Journal != Base.Journal) {
        std::printf("verify-queues: %s DIVERGED on %s queue (%s differs)\n",
                    Sc.Name.c_str(), V.Label,
                    Got.Output != Base.Output ? "output" : "event journal");
        Ok = false;
      }
    }
    if (Ok)
      std::printf("verify-queues: %s: heap and calendar queues "
                  "bit-identical (%zu events)\n",
                  Sc.Name.c_str(), Base.Journal.size());
    AllOk = AllOk && Ok;
  }
  return AllOk ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && !std::strcmp(Argv[1], "verify-schedules"))
    return runVerifySchedules(Argc - 1, Argv + 1);
  if (Argc > 1 && !std::strcmp(Argv[1], "verify-queues"))
    return runVerifyQueues(Argc - 1, Argv + 1);
  // The optional "trace" verb comes before the flags.
  bool Trace = Argc > 1 && !std::strcmp(Argv[1], "trace");
  CliOptions Opt;
  if (!parseArgs(Trace ? Argc - 1 : Argc, Trace ? Argv + 1 : Argv, Opt))
    return 1;
  if (Opt.Extensions)
    registerExtensionPlugins(PluginRegistry::global());

  for (const std::string &Op : Opt.Params.Operations)
    if (!PluginRegistry::global().get(Op)) {
      std::fprintf(stderr,
                   "error: unknown operation '%s' (see --list-operations)\n",
                   Op.c_str());
      return 1;
    }

  Scheduler S;
  OpTraceSink Sink;
  if (Trace)
    S.setTraceSink(&Sink);
  Cluster C(S, Opt.Nodes, Opt.Cores);
  std::unique_ptr<DistributedFs> Fs = makeFs(S, Opt);
  if (!Fs) {
    std::fprintf(stderr, "error: unknown file system '%s'\n",
                 Opt.Fs.c_str());
    return 1;
  }
  C.mountEverywhere(*Fs);

  // Distribute the MPI slots over the nodes like a block hostfile.
  unsigned PerNode = (Opt.Np + Opt.Nodes - 1) / Opt.Nodes;
  std::vector<unsigned> Layout;
  for (unsigned R = 0; R < Opt.Np; ++R)
    Layout.push_back(R / PerNode);
  MpiEnvironment Env{Layout};

  Master M(C, Env, Fs->name(), Opt.Params);
  ResultSet Results = M.run();

  std::printf("%s\n", Results.EnvironmentProfile.c_str());
  TextTable T;
  T.setHeader({"operation", "nodes", "ppn", "procs", "total ops",
               "wall [s]", "stonewall ops/s"});
  for (const SubtaskResult &Sub : Results.Subtasks) {
    SubtaskSummary Sum = summarize(Sub);
    T.addRow({Sum.Operation, format("%u", Sum.NumNodes),
              format("%u", Sum.PerNode), format("%u", Sum.TotalProcesses),
              format("%llu", (unsigned long long)Sum.TotalOps),
              format("%.2f", Sum.WallClockSec),
              format("%.0f", Sum.StonewallOpsPerSec)});
  }
  std::fputs(T.render().c_str(), stdout);

  if (Trace) {
    std::printf("\n%s", Results.TraceSummary.c_str());
    std::printf("\n%s", renderLatencyBreakdownChart(
                            traceStats(Sink),
                            "mean latency breakdown on " + Fs->name())
                            .c_str());
  }

  if (Opt.Chart) {
    for (const std::string &Op : Opt.Params.Operations) {
      ScalingInput In;
      In.Label = Op + " on " + Fs->name();
      for (const SubtaskResult &Sub : Results.Subtasks)
        if (Sub.Operation == Op)
          In.Subtasks.push_back(&Sub);
      std::printf("\n%s", renderProcessScalingChart(
                              {In}, Op + ": performance vs processes")
                              .c_str());
    }
  }

  if (!Opt.OutDir.empty()) {
    if (!writeResultSet(Results, Opt.OutDir)) {
      std::fprintf(stderr, "error: could not write results to %s\n",
                   Opt.OutDir.c_str());
      return 1;
    }
    std::printf("\nresults written to %s/\n", Opt.OutDir.c_str());
  }
  return 0;
}
