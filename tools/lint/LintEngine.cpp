//===- tools/lint/LintEngine.cpp ------------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

using namespace dmb;
using namespace dmb::lint;

namespace {

bool isIdentChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

bool endsWith(const std::string &S, const char *Suffix) {
  std::string Suf(Suffix);
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

/// Blanks out string/char literal contents and strips comments so fixture
/// strings and prose cannot trip the token rules. Block comments and raw
/// string literals span lines, so the sanitizer carries state from one
/// line to the next; feed a whole file through one instance (sanitizeLines)
/// rather than constructing a fresh one per line.
class Sanitizer {
public:
  std::string line(const std::string &Line) {
    std::string Out;
    Out.reserve(Line.size());
    size_t I = 0;
    while (I < Line.size()) {
      if (InBlockComment) {
        size_t End = Line.find("*/", I);
        if (End == std::string::npos)
          return Out; // Rest of the line is comment.
        InBlockComment = false;
        I = End + 2;
        continue;
      }
      if (InRawString) {
        size_t End = Line.find(RawTerminator, I);
        if (End == std::string::npos)
          return Out; // Still inside the raw string.
        InRawString = false;
        Out += '"'; // Closing marker, mirroring the plain-string case.
        I = End + RawTerminator.size();
        continue;
      }
      char C = Line[I];
      if (C == 'R' && I + 1 < Line.size() && Line[I + 1] == '"' &&
          (I == 0 || !isIdentChar(Line[I - 1]))) {
        // R"delim( ... )delim" — the contents are literal until the
        // matching )delim" terminator, possibly lines later.
        size_t Paren = Line.find('(', I + 2);
        if (Paren != std::string::npos) {
          RawTerminator = ")" + Line.substr(I + 2, Paren - (I + 2)) + "\"";
          InRawString = true;
          Out += '"';
          I = Paren + 1;
          continue;
        }
      }
      if (C == '"') {
        Out += '"';
        ++I;
        while (I < Line.size()) {
          if (Line[I] == '\\') {
            I += 2;
            continue;
          }
          if (Line[I] == '"') {
            Out += '"';
            ++I;
            break;
          }
          ++I;
        }
        continue; // Plain strings cannot span lines.
      }
      if (C == '\'') {
        ++I;
        while (I < Line.size()) {
          if (Line[I] == '\\') {
            I += 2;
            continue;
          }
          if (Line[I] == '\'') {
            ++I;
            break;
          }
          ++I;
        }
        continue;
      }
      if (C == '/' && I + 1 < Line.size()) {
        if (Line[I + 1] == '/')
          return Out; // Rest of the line is a comment.
        if (Line[I + 1] == '*') {
          InBlockComment = true;
          I += 2;
          continue;
        }
      }
      Out += C;
      ++I;
    }
    return Out;
  }

private:
  bool InBlockComment = false;
  bool InRawString = false;
  std::string RawTerminator;
};

/// Sanitizes a whole file, carrying block-comment / raw-string state
/// across lines.
std::vector<std::string> sanitizeLines(const std::vector<std::string> &Lines) {
  Sanitizer S;
  std::vector<std::string> Out;
  Out.reserve(Lines.size());
  for (const std::string &L : Lines)
    Out.push_back(S.line(L));
  return Out;
}

/// Position of the first occurrence of \p Token in \p Line with no
/// identifier character immediately before it (so "time(" does not match
/// "runtime("); npos when absent.
size_t bareTokenPos(const std::string &Line, const std::string &Token) {
  size_t Pos = 0;
  while ((Pos = Line.find(Token, Pos)) != std::string::npos) {
    if (Pos == 0 || !isIdentChar(Line[Pos - 1]))
      return Pos;
    Pos += 1;
  }
  return std::string::npos;
}

bool hasBareToken(const std::string &Line, const std::string &Token) {
  return bareTokenPos(Line, Token) != std::string::npos;
}

/// Whether \p Line contains \p Word with non-identifier characters (or the
/// line boundary) on both sides — "Rng" must not match "RngState".
bool hasWholeWord(const std::string &Line, const std::string &Word) {
  size_t Pos = 0;
  while ((Pos = Line.find(Word, Pos)) != std::string::npos) {
    size_t After = Pos + Word.size();
    if ((Pos == 0 || !isIdentChar(Line[Pos - 1])) &&
        (After >= Line.size() || !isIdentChar(Line[After])))
      return true;
    ++Pos;
  }
  return false;
}

struct Pattern {
  const char *Text;
  bool Bare; ///< Require a non-identifier character before the match.
};

const Pattern WallClockPatterns[] = {
    {"std::chrono", false},   {"gettimeofday", false},
    {"clock_gettime", false}, {"time(", true},
};

const Pattern RandomnessPatterns[] = {
    {"std::rand", false}, {"random_device", false}, {"mt19937", false},
    {"drand48", false},   {"srand(", true},         {"rand(", true},
};

const Pattern TraceSinkPatterns[] = {
    {"beginOp(", true},
    {"finishOp(", true},
    {"stamp(", true},
};

bool matchesAny(const std::string &Line, const Pattern *Patterns, size_t N,
                const char *&Hit) {
  for (size_t I = 0; I < N; ++I) {
    const Pattern &P = Patterns[I];
    bool Found = P.Bare ? hasBareToken(Line, P.Text)
                        : Line.find(P.Text) != std::string::npos;
    if (Found) {
      Hit = P.Text;
      return true;
    }
  }
  return false;
}

std::vector<std::string> splitLines(const std::string &Content) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Content) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

bool allowed(const std::string &RawLine, const char *Rule) {
  return RawLine.find(std::string("dmeta-lint: allow(") + Rule + ")") !=
         std::string::npos;
}

/// Directories whose code must not read host time or stdlib randomness:
/// the simulation substrate plus everything whose output is compared
/// against recorded experiment results. tools/ counts too — the CLI and
/// the linter drive simulations whose results must replay bit-for-bit.
bool inDeterministicScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/sim/") || startsWith(RelPath, "src/dfs/") ||
         startsWith(RelPath, "src/cluster/") ||
         startsWith(RelPath, "tests/") || startsWith(RelPath, "bench/") ||
         startsWith(RelPath, "tools/");
}

/// Directories where scheduled-event callbacks outlive the frame that
/// created them, so a default by-reference lambda capture is a
/// use-after-return waiting to happen. tests/ and bench/ are exempt:
/// there the enclosing frame runs the scheduler to completion itself.
bool inEventCaptureScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/") || startsWith(RelPath, "tools/");
}

/// Simulation directories whose trace recording must go through the
/// owning Scheduler so every timestamp reads the simulated clock.
bool inTraceClockScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/sim/") || startsWith(RelPath, "src/dfs/");
}

/// Files allowed to touch an OpTraceSink directly: the sink itself and
/// the Scheduler, which owns the clock the stamps must come from.
bool traceClockExempt(const std::string &RelPath) {
  return startsWith(RelPath, "src/sim/Trace.") ||
         startsWith(RelPath, "src/sim/Scheduler.");
}

/// Expected include-guard macro: DMETABENCH_<DIR>_<FILE>_H. The "src"
/// prefix is dropped, and an umbrella directory matching the project name
/// (src/dmetabench/DMetabench.h) is not repeated.
std::string expectedGuard(const std::string &RelPath) {
  std::string Stem = RelPath.substr(0, RelPath.size() - 2); // drop ".h"
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : Stem) {
    if (C == '/') {
      Parts.push_back(Cur);
      Cur.clear();
    } else {
      char U = (C >= 'a' && C <= 'z') ? static_cast<char>(C - 'a' + 'A') : C;
      Cur += isIdentChar(U) ? U : '_';
    }
  }
  Parts.push_back(Cur);
  size_t First = 0;
  if (!Parts.empty() && Parts[First] == "SRC")
    ++First;
  if (First < Parts.size() && Parts[First] == "DMETABENCH")
    ++First;
  std::string Guard = "DMETABENCH";
  for (size_t I = First; I < Parts.size(); ++I)
    Guard += "_" + Parts[I];
  return Guard + "_H";
}

void checkHeaderGuard(const std::string &RelPath,
                      const std::vector<std::string> &Lines,
                      std::vector<Violation> &Out) {
  std::string Expected = expectedGuard(RelPath);
  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::string &L = Lines[I];
    if (!startsWith(L, "#ifndef "))
      continue;
    std::string Guard = L.substr(8);
    while (!Guard.empty() && (Guard.back() == ' ' || Guard.back() == '\r'))
      Guard.pop_back();
    if (Guard != Expected)
      Out.push_back({RelPath, static_cast<int>(I + 1), "header-guard",
                     "guard '" + Guard + "' should be '" + Expected + "'"});
    else if (I + 1 >= Lines.size() ||
             Lines[I + 1] != "#define " + Expected)
      Out.push_back({RelPath, static_cast<int>(I + 2), "header-guard",
                     "'#define " + Expected + "' must follow the #ifndef"});
    return;
  }
  Out.push_back(
      {RelPath, 0, "header-guard", "missing '#ifndef " + Expected + "'"});
}

std::vector<std::string> parseEnumMembers(const std::string &ErrorH) {
  std::vector<std::string> Members;
  bool InEnum = false;
  for (const std::string &L : sanitizeLines(splitLines(ErrorH))) {
    if (!InEnum) {
      if (L.find("enum class FsError") != std::string::npos)
        InEnum = true;
      continue;
    }
    if (L.find("};") != std::string::npos)
      break;
    size_t I = 0;
    while (I < L.size() && (L[I] == ' ' || L[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < L.size() && isIdentChar(L[I]))
      ++I;
    if (I > Start)
      Members.push_back(L.substr(Start, I - Start));
  }
  return Members;
}

} // namespace

void dmb::lint::lintContent(const std::string &RelPath,
                            const std::string &Content,
                            std::vector<Violation> &Out) {
  std::vector<std::string> Lines = splitLines(Content);
  std::vector<std::string> Sanitized = sanitizeLines(Lines);

  if ((startsWith(RelPath, "src/") || startsWith(RelPath, "bench/") ||
       startsWith(RelPath, "tools/")) &&
      endsWith(RelPath, ".h"))
    checkHeaderGuard(RelPath, Lines, Out);

  bool Deterministic = inDeterministicScope(RelPath);
  bool AssertScope =
      startsWith(RelPath, "src/") || startsWith(RelPath, "tools/");
  bool EventCaptureScope = inEventCaptureScope(RelPath);
  bool TraceScope = inTraceClockScope(RelPath) && !traceClockExempt(RelPath);

  // The fault-determinism rule fires only in files that handle a
  // FaultPolicy in code (a mention in a comment or string does not count):
  // there, every Rng must be derived from the policy Seed at the point of
  // use. A sequential stream ties fault rolls to event-execution order and
  // an ad-hoc seed unties them from the scenario, either of which breaks
  // replay and schedule-perturbation invariance (verify-schedules).
  bool FaultScope = false;
  for (const std::string &L : Sanitized)
    if (hasWholeWord(L, "FaultPolicy")) {
      FaultScope = true;
      break;
    }

  // The raii-guard rule only fires in files that use a host-thread mutex
  // at all; SimMutex and friends have their own lock()/unlock() protocol
  // driven by the scheduler, which RAII cannot express.
  bool UsesHostMutex = false;
  for (const std::string &L : Sanitized)
    if (L.find("std::mutex") != std::string::npos ||
        L.find("std::recursive_mutex") != std::string::npos ||
        L.find("std::timed_mutex") != std::string::npos ||
        L.find("std::shared_mutex") != std::string::npos ||
        L.find("pthread_mutex") != std::string::npos) {
      UsesHostMutex = true;
      break;
    }

  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::string &Raw = Lines[I];
    const std::string &L = Sanitized[I];
    int LineNo = static_cast<int>(I + 1);
    const char *Hit = nullptr;

    if (Deterministic) {
      if (!allowed(Raw, "wall-clock") &&
          matchesAny(L, WallClockPatterns, std::size(WallClockPatterns),
                     Hit))
        Out.push_back({RelPath, LineNo, "wall-clock",
                       std::string("host clock call '") + Hit +
                           "' in deterministic code; use Scheduler::now() "
                           "/ SimTime"});
      if (!allowed(Raw, "randomness") &&
          matchesAny(L, RandomnessPatterns, std::size(RandomnessPatterns),
                     Hit))
        Out.push_back({RelPath, LineNo, "randomness",
                       std::string("unseeded randomness '") + Hit +
                           "' in deterministic code; use support/Random"});
    }

    if (TraceScope && !allowed(Raw, "trace-clock") &&
        matchesAny(L, TraceSinkPatterns, std::size(TraceSinkPatterns), Hit))
      Out.push_back({RelPath, LineNo, "trace-clock",
                     std::string("direct OpTraceSink call '") + Hit +
                         "' outside the scheduler; use "
                         "Scheduler::traceBegin()/traceStamp() so stamps "
                         "read the owning clock"});

    if (FaultScope && !allowed(Raw, "fault-determinism") &&
        hasWholeWord(L, "Rng") && L.find("Seed") == std::string::npos)
      Out.push_back({RelPath, LineNo, "fault-determinism",
                     "Rng in fault-policy code not derived from a Seed on "
                     "this line; fault rolls must be a pure function of "
                     "(FaultPolicy.Seed, send time) — a sequential stream "
                     "or ad-hoc seed breaks schedule invariance"});

    if (AssertScope && !allowed(Raw, "raw-assert")) {
      if (hasBareToken(L, "assert("))
        Out.push_back({RelPath, LineNo, "raw-assert",
                       "raw assert() vanishes in release builds; use "
                       "DMB_ASSERT / DMB_CHECK (support/Assert.h)"});
      else if (L.find("#include <cassert>") != std::string::npos)
        Out.push_back({RelPath, LineNo, "raw-assert",
                       "<cassert> include; use support/Assert.h"});
    }

    if (EventCaptureScope && !allowed(Raw, "event-ref-capture")) {
      size_t CallPos = std::min(bareTokenPos(L, "at("),
                                bareTokenPos(L, "after("));
      size_t Cap = CallPos == std::string::npos
                       ? std::string::npos
                       : L.find("[&", CallPos);
      if (Cap != std::string::npos && Cap + 2 < L.size() &&
          (L[Cap + 2] == ']' || L[Cap + 2] == ','))
        Out.push_back({RelPath, LineNo, "event-ref-capture",
                       "event callback captures locals by reference; the "
                       "scheduler may fire it after the enclosing frame is "
                       "gone — capture by value or capture 'this'"});
    }

    if (UsesHostMutex && !allowed(Raw, "raii-guard") &&
        (L.find(".lock()") != std::string::npos ||
         L.find("->lock()") != std::string::npos ||
         L.find(".unlock()") != std::string::npos ||
         L.find("->unlock()") != std::string::npos ||
         hasBareToken(L, "pthread_mutex_lock(") ||
         hasBareToken(L, "pthread_mutex_unlock(")))
      Out.push_back({RelPath, LineNo, "raii-guard",
                     "manual lock()/unlock() in a file using a host mutex; "
                     "pair acquisitions through std::lock_guard / "
                     "std::scoped_lock so early returns and exceptions "
                     "cannot leak the lock"});
  }
}

void dmb::lint::lintErrorTable(const std::string &ErrorH,
                               const std::string &ErrorCpp,
                               std::vector<Violation> &Out) {
  const char *HPath = "src/support/Error.h";
  const char *CppPath = "src/support/Error.cpp";

  std::vector<std::string> Members = parseEnumMembers(ErrorH);
  if (Members.empty()) {
    Out.push_back({HPath, 0, "error-table", "enum class FsError not found"});
    return;
  }

  // Declared count, if present.
  size_t DeclaredCount = 0;
  bool HaveCount = false;
  for (const std::string &L : sanitizeLines(splitLines(ErrorH))) {
    size_t Pos = L.find("NumFsErrors = ");
    if (Pos == std::string::npos)
      continue;
    DeclaredCount = std::strtoul(L.c_str() + Pos + 14, nullptr, 10);
    HaveCount = true;
    break;
  }
  if (!HaveCount)
    Out.push_back({HPath, 0, "error-table", "NumFsErrors constant missing"});
  else if (DeclaredCount != Members.size())
    Out.push_back({HPath, 0, "error-table",
                   "NumFsErrors is " + std::to_string(DeclaredCount) +
                       " but the enum has " +
                       std::to_string(Members.size()) + " members"});

  // case FsError::X: ... return "NAME"; pairs from the name table.
  std::vector<std::pair<std::string, std::string>> Cases;
  std::vector<std::string> CppLines = splitLines(ErrorCpp);
  std::vector<std::string> CppSanitized = sanitizeLines(CppLines);
  for (size_t I = 0; I < CppLines.size(); ++I) {
    const std::string &L = CppSanitized[I];
    size_t Pos = L.find("case FsError::");
    if (Pos == std::string::npos)
      continue;
    size_t Start = Pos + 14;
    size_t End = Start;
    while (End < L.size() && isIdentChar(L[End]))
      ++End;
    std::string Member = L.substr(Start, End - Start);
    // The returned literal sits on this or one of the next two lines; the
    // sanitizer blanks literal contents, so read the raw text here.
    std::string Name;
    for (size_t J = I; J < CppLines.size() && J < I + 3; ++J) {
      const std::string &RawJ = CppLines[J];
      size_t R = RawJ.find("return \"");
      if (R == std::string::npos)
        continue;
      size_t NStart = R + 8;
      size_t NEnd = RawJ.find('"', NStart);
      if (NEnd != std::string::npos)
        Name = RawJ.substr(NStart, NEnd - NStart);
      break;
    }
    Cases.emplace_back(Member, Name);
  }

  for (const std::string &M : Members) {
    size_t Count = 0;
    for (const auto &C : Cases)
      if (C.first == M)
        ++Count;
    if (Count == 0)
      Out.push_back({CppPath, 0, "error-table",
                     "fsErrorName has no case for FsError::" + M});
    else if (Count > 1)
      Out.push_back({CppPath, 0, "error-table",
                     "fsErrorName has duplicate cases for FsError::" + M});
  }
  for (const auto &C : Cases) {
    if (std::find(Members.begin(), Members.end(), C.first) == Members.end())
      Out.push_back({CppPath, 0, "error-table",
                     "fsErrorName handles unknown member FsError::" +
                         C.first});
    if (C.second.empty())
      Out.push_back({CppPath, 0, "error-table",
                     "case FsError::" + C.first +
                         " does not return a name literal"});
  }
  for (size_t I = 0; I < Cases.size(); ++I)
    for (size_t J = I + 1; J < Cases.size(); ++J)
      if (!Cases[I].second.empty() && Cases[I].second == Cases[J].second)
        Out.push_back({CppPath, 0, "error-table",
                       "duplicate error name '" + Cases[I].second + "'"});
}

std::vector<Violation> dmb::lint::lintTree(const std::string &Root,
                                           size_t *FilesChecked) {
  namespace fs = std::filesystem;
  std::vector<Violation> Out;
  size_t Checked = 0;

  std::vector<std::string> RelPaths;
  for (const char *Top : {"src", "tests", "bench", "tools"}) {
    fs::path Dir = fs::path(Root) / Top;
    std::error_code Ec;
    if (!fs::is_directory(Dir, Ec))
      continue;
    for (auto It = fs::recursive_directory_iterator(Dir, Ec);
         !Ec && It != fs::recursive_directory_iterator(); ++It) {
      if (!It->is_regular_file())
        continue;
      std::string Ext = It->path().extension().string();
      if (Ext != ".h" && Ext != ".cpp" && Ext != ".cc")
        continue;
      RelPaths.push_back(
          fs::relative(It->path(), fs::path(Root), Ec).generic_string());
    }
  }
  std::sort(RelPaths.begin(), RelPaths.end());

  auto ReadFile = [&](const fs::path &P, std::string &Content) {
    std::ifstream In(P, std::ios::binary);
    if (!In)
      return false;
    std::ostringstream Ss;
    Ss << In.rdbuf();
    Content = Ss.str();
    return true;
  };

  for (const std::string &Rel : RelPaths) {
    std::string Content;
    if (!ReadFile(fs::path(Root) / Rel, Content)) {
      Out.push_back({Rel, 0, "io", "cannot read file"});
      continue;
    }
    ++Checked;
    lintContent(Rel, Content, Out);
  }

  // Cross-file error-table check, when the pair exists in this tree.
  std::string ErrH, ErrCpp;
  if (ReadFile(fs::path(Root) / "src/support/Error.h", ErrH) &&
      ReadFile(fs::path(Root) / "src/support/Error.cpp", ErrCpp))
    lintErrorTable(ErrH, ErrCpp, Out);

  if (FilesChecked)
    *FilesChecked = Checked;
  return Out;
}

std::string dmb::lint::renderViolation(const Violation &V) {
  std::string Loc = V.File;
  if (V.Line > 0)
    Loc += ":" + std::to_string(V.Line);
  return Loc + ": [" + V.Rule + "] " + V.Message;
}
