//===- tools/lint/LintEngine.cpp ------------------------------------------===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include "analyze/Tokenizer.h"
#include <algorithm>
#include <cstdlib>
#include <iterator>

using namespace dmb;
using namespace dmb::lint;
using dmb::analyze::isIdentChar;
using dmb::analyze::sanitizeSource;
using dmb::analyze::splitLines;

namespace {

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

bool endsWith(const std::string &S, const char *Suffix) {
  std::string Suf(Suffix);
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

/// Position of the first occurrence of \p Token in \p Line with no
/// identifier character immediately before it (so "time(" does not match
/// "runtime("); npos when absent.
size_t bareTokenPos(const std::string &Line, const std::string &Token) {
  size_t Pos = 0;
  while ((Pos = Line.find(Token, Pos)) != std::string::npos) {
    if (Pos == 0 || !isIdentChar(Line[Pos - 1]))
      return Pos;
    Pos += 1;
  }
  return std::string::npos;
}

bool hasBareToken(const std::string &Line, const std::string &Token) {
  return bareTokenPos(Line, Token) != std::string::npos;
}

/// Whether \p Line contains \p Word with non-identifier characters (or the
/// line boundary) on both sides — "Rng" must not match "RngState".
bool hasWholeWord(const std::string &Line, const std::string &Word) {
  size_t Pos = 0;
  while ((Pos = Line.find(Word, Pos)) != std::string::npos) {
    size_t After = Pos + Word.size();
    if ((Pos == 0 || !isIdentChar(Line[Pos - 1])) &&
        (After >= Line.size() || !isIdentChar(Line[After])))
      return true;
    ++Pos;
  }
  return false;
}

struct Pattern {
  const char *Text;
  bool Bare; ///< Require a non-identifier character before the match.
};

const Pattern WallClockPatterns[] = {
    {"std::chrono", false},   {"gettimeofday", false},
    {"clock_gettime", false}, {"time(", true},
};

const Pattern RandomnessPatterns[] = {
    {"std::rand", false}, {"random_device", false}, {"mt19937", false},
    {"drand48", false},   {"srand(", true},         {"rand(", true},
};

const Pattern TraceSinkPatterns[] = {
    {"beginOp(", true},
    {"finishOp(", true},
    {"stamp(", true},
};

const Pattern EventQueuePatterns[] = {
    {"std::priority_queue", false},
    {"push_heap(", true},
    {"pop_heap(", true},
    {"make_heap(", true},
};

bool matchesAny(const std::string &Line, const Pattern *Patterns, size_t N,
                const char *&Hit) {
  for (size_t I = 0; I < N; ++I) {
    const Pattern &P = Patterns[I];
    bool Found = P.Bare ? hasBareToken(Line, P.Text)
                        : Line.find(P.Text) != std::string::npos;
    if (Found) {
      Hit = P.Text;
      return true;
    }
  }
  return false;
}

bool allowed(const std::string &RawLine, const char *Rule) {
  return analyze::allowedOnLine(RawLine, "dmeta-lint", Rule);
}

/// Directories whose code must not read host time or stdlib randomness:
/// the simulation substrate plus everything whose output is compared
/// against recorded experiment results. tools/ counts too — the CLI and
/// the linter drive simulations whose results must replay bit-for-bit.
bool inDeterministicScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/sim/") || startsWith(RelPath, "src/dfs/") ||
         startsWith(RelPath, "src/cluster/") ||
         startsWith(RelPath, "tests/") || startsWith(RelPath, "bench/") ||
         startsWith(RelPath, "tools/");
}

/// Directories where scheduled-event callbacks outlive the frame that
/// created them, so a default by-reference lambda capture is a
/// use-after-return waiting to happen. tests/ and bench/ are exempt:
/// there the enclosing frame runs the scheduler to completion itself.
bool inEventCaptureScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/") || startsWith(RelPath, "tools/");
}

/// Simulation directories whose trace recording must go through the
/// owning Scheduler so every timestamp reads the simulated clock.
bool inTraceClockScope(const std::string &RelPath) {
  return startsWith(RelPath, "src/sim/") || startsWith(RelPath, "src/dfs/");
}

/// Directories where pending-event ordering must go through the
/// sim/EventQueue interface. A hand-rolled priority queue next to the
/// scheduler silently diverges from the calendar queue's tie discipline;
/// only the EventQueue implementation file may use heap primitives.
/// tests/ are exempt (lint fixtures quote the patterns on purpose).
bool inEventQueueScope(const std::string &RelPath) {
  return (startsWith(RelPath, "src/") || startsWith(RelPath, "bench/") ||
          startsWith(RelPath, "tools/")) &&
         !startsWith(RelPath, "src/sim/EventQueue.");
}

/// Files allowed to touch an OpTraceSink directly: the sink itself and
/// the Scheduler, which owns the clock the stamps must come from.
bool traceClockExempt(const std::string &RelPath) {
  return startsWith(RelPath, "src/sim/Trace.") ||
         startsWith(RelPath, "src/sim/Scheduler.");
}

/// True when [Pos, end) contains a letter — the minimum for a suppression
/// comment to count as justified.
bool hasJustificationText(const std::string &Line, size_t Pos) {
  for (size_t I = Pos; I < Line.size(); ++I) {
    char C = Line[I];
    if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z'))
      return true;
  }
  return false;
}

/// The suppression-justification rule: every allow() and NOLINT in scope
/// must carry trailing prose. Works on RAW lines — suppressions live in
/// comments. The patterns are assembled at runtime so this very function
/// does not flag itself.
void checkSuppressionJustified(const std::string &RelPath,
                               const std::string &Raw, int LineNo,
                               std::vector<Violation> &Out) {
  for (const char *Tool : {"dmeta-lint", "dmeta-analyze"}) {
    std::string Pattern = std::string(Tool) + ": allow(";
    size_t Pos = Raw.find(Pattern);
    if (Pos == std::string::npos)
      continue;
    size_t Close = Raw.find(')', Pos + Pattern.size());
    if (Close != std::string::npos &&
        hasJustificationText(Raw, Close + 1))
      continue;
    Out.push_back({RelPath, LineNo, "suppression-justification",
                   std::string(Tool) +
                       " allow() without a trailing justification; say why "
                       "the exception is sound so the reviewer can check "
                       "the reasoning, not just the suppression"});
  }
  // clang-tidy spelling: "// NOLINT(rule): why". Only a NOLINT that opens
  // a comment counts — prose mentions elsewhere in a sentence do not.
  size_t Slashes = 0;
  while ((Slashes = Raw.find("//", Slashes)) != std::string::npos) {
    size_t P = Slashes + 2;
    while (P < Raw.size() && (Raw[P] == ' ' || Raw[P] == '/'))
      ++P;
    Slashes = P;
    if (Raw.compare(P, 6, "NOLI"
                          "NT") != 0)
      continue;
    P += 6;
    if (Raw.compare(P, 8, "NEXTLINE") == 0)
      P += 8;
    if (P < Raw.size() && Raw[P] == '(') {
      size_t Close = Raw.find(')', P);
      P = Close == std::string::npos ? Raw.size() : Close + 1;
    }
    if (!hasJustificationText(Raw, P))
      Out.push_back({RelPath, LineNo, "suppression-justification",
                     "NOLINT without a trailing justification; say why the "
                     "clang-tidy finding is a false positive here"});
  }
}

/// Expected include-guard macro: DMETABENCH_<DIR>_<FILE>_H. The "src"
/// prefix is dropped, and an umbrella directory matching the project name
/// (src/dmetabench/DMetabench.h) is not repeated.
std::string expectedGuard(const std::string &RelPath) {
  std::string Stem = RelPath.substr(0, RelPath.size() - 2); // drop ".h"
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : Stem) {
    if (C == '/') {
      Parts.push_back(Cur);
      Cur.clear();
    } else {
      char U = (C >= 'a' && C <= 'z') ? static_cast<char>(C - 'a' + 'A') : C;
      Cur += isIdentChar(U) ? U : '_';
    }
  }
  Parts.push_back(Cur);
  size_t First = 0;
  if (!Parts.empty() && Parts[First] == "SRC")
    ++First;
  if (First < Parts.size() && Parts[First] == "DMETABENCH")
    ++First;
  std::string Guard = "DMETABENCH";
  for (size_t I = First; I < Parts.size(); ++I)
    Guard += "_" + Parts[I];
  return Guard + "_H";
}

void checkHeaderGuard(const std::string &RelPath,
                      const std::vector<std::string> &Lines,
                      std::vector<Violation> &Out) {
  std::string Expected = expectedGuard(RelPath);
  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::string &L = Lines[I];
    if (!startsWith(L, "#ifndef "))
      continue;
    std::string Guard = L.substr(8);
    while (!Guard.empty() && (Guard.back() == ' ' || Guard.back() == '\r'))
      Guard.pop_back();
    if (Guard != Expected)
      Out.push_back({RelPath, static_cast<int>(I + 1), "header-guard",
                     "guard '" + Guard + "' should be '" + Expected + "'"});
    else if (I + 1 >= Lines.size() ||
             Lines[I + 1] != "#define " + Expected)
      Out.push_back({RelPath, static_cast<int>(I + 2), "header-guard",
                     "'#define " + Expected + "' must follow the #ifndef"});
    return;
  }
  Out.push_back(
      {RelPath, 0, "header-guard", "missing '#ifndef " + Expected + "'"});
}

std::vector<std::string> parseEnumMembers(const std::string &ErrorH) {
  std::vector<std::string> Members;
  bool InEnum = false;
  for (const std::string &L : sanitizeSource(ErrorH)) {
    if (!InEnum) {
      if (L.find("enum class FsError") != std::string::npos)
        InEnum = true;
      continue;
    }
    if (L.find("};") != std::string::npos)
      break;
    size_t I = 0;
    while (I < L.size() && (L[I] == ' ' || L[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < L.size() && isIdentChar(L[I]))
      ++I;
    if (I > Start)
      Members.push_back(L.substr(Start, I - Start));
  }
  return Members;
}

} // namespace

void dmb::lint::lintContent(const std::string &RelPath,
                            const std::string &Content,
                            std::vector<Violation> &Out) {
  std::vector<std::string> Lines = splitLines(Content);
  std::vector<std::string> Sanitized = sanitizeSource(Content);

  if ((startsWith(RelPath, "src/") || startsWith(RelPath, "bench/") ||
       startsWith(RelPath, "tools/")) &&
      endsWith(RelPath, ".h"))
    checkHeaderGuard(RelPath, Lines, Out);

  bool Deterministic = inDeterministicScope(RelPath);
  bool AssertScope =
      startsWith(RelPath, "src/") || startsWith(RelPath, "tools/");
  // tests/ are exempt from the justification rule: lint fixtures there
  // quote bare suppressions on purpose, and raw-line matching would see
  // them inside the fixture strings.
  bool JustificationScope = startsWith(RelPath, "src/") ||
                            startsWith(RelPath, "bench/") ||
                            startsWith(RelPath, "tools/");
  bool EventCaptureScope = inEventCaptureScope(RelPath);
  bool TraceScope = inTraceClockScope(RelPath) && !traceClockExempt(RelPath);
  bool EventQueueScope = inEventQueueScope(RelPath);

  // The fault-determinism rule fires only in files that handle a
  // FaultPolicy in code (a mention in a comment or string does not count):
  // there, every Rng must be derived from the policy Seed at the point of
  // use. A sequential stream ties fault rolls to event-execution order and
  // an ad-hoc seed unties them from the scenario, either of which breaks
  // replay and schedule-perturbation invariance (verify-schedules).
  bool FaultScope = false;
  for (const std::string &L : Sanitized)
    if (hasWholeWord(L, "FaultPolicy")) {
      FaultScope = true;
      break;
    }

  // The raii-guard rule only fires in files that use a host-thread mutex
  // at all; SimMutex and friends have their own lock()/unlock() protocol
  // driven by the scheduler, which RAII cannot express.
  bool UsesHostMutex = false;
  for (const std::string &L : Sanitized)
    if (L.find("std::mutex") != std::string::npos ||
        L.find("std::recursive_mutex") != std::string::npos ||
        L.find("std::timed_mutex") != std::string::npos ||
        L.find("std::shared_mutex") != std::string::npos ||
        L.find("pthread_mutex") != std::string::npos) {
      UsesHostMutex = true;
      break;
    }

  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::string &Raw = Lines[I];
    const std::string &L = Sanitized[I];
    int LineNo = static_cast<int>(I + 1);
    const char *Hit = nullptr;

    if (JustificationScope && !allowed(Raw, "suppression-justification"))
      checkSuppressionJustified(RelPath, Raw, LineNo, Out);

    if (Deterministic) {
      if (!allowed(Raw, "wall-clock") &&
          matchesAny(L, WallClockPatterns, std::size(WallClockPatterns),
                     Hit))
        Out.push_back({RelPath, LineNo, "wall-clock",
                       std::string("host clock call '") + Hit +
                           "' in deterministic code; use Scheduler::now() "
                           "/ SimTime"});
      if (!allowed(Raw, "randomness") &&
          matchesAny(L, RandomnessPatterns, std::size(RandomnessPatterns),
                     Hit))
        Out.push_back({RelPath, LineNo, "randomness",
                       std::string("unseeded randomness '") + Hit +
                           "' in deterministic code; use support/Random"});
    }

    if (EventQueueScope && !allowed(Raw, "event-queue") &&
        matchesAny(L, EventQueuePatterns, std::size(EventQueuePatterns),
                   Hit))
      Out.push_back({RelPath, LineNo, "event-queue",
                     std::string("heap scheduling primitive '") + Hit +
                         "' outside sim/EventQueue; route pending-event "
                         "ordering through the EventQueue interface so the "
                         "heap and calendar implementations stay "
                         "interchangeable"});

    if (TraceScope && !allowed(Raw, "trace-clock") &&
        matchesAny(L, TraceSinkPatterns, std::size(TraceSinkPatterns), Hit))
      Out.push_back({RelPath, LineNo, "trace-clock",
                     std::string("direct OpTraceSink call '") + Hit +
                         "' outside the scheduler; use "
                         "Scheduler::traceBegin()/traceStamp() so stamps "
                         "read the owning clock"});

    if (FaultScope && !allowed(Raw, "fault-determinism") &&
        hasWholeWord(L, "Rng") && L.find("Seed") == std::string::npos)
      Out.push_back({RelPath, LineNo, "fault-determinism",
                     "Rng in fault-policy code not derived from a Seed on "
                     "this line; fault rolls must be a pure function of "
                     "(FaultPolicy.Seed, send time) — a sequential stream "
                     "or ad-hoc seed breaks schedule invariance"});

    if (AssertScope && !allowed(Raw, "raw-assert")) {
      if (hasBareToken(L, "assert("))
        Out.push_back({RelPath, LineNo, "raw-assert",
                       "raw assert() vanishes in release builds; use "
                       "DMB_ASSERT / DMB_CHECK (support/Assert.h)"});
      else if (L.find("#include <cassert>") != std::string::npos)
        Out.push_back({RelPath, LineNo, "raw-assert",
                       "<cassert> include; use support/Assert.h"});
    }

    if (EventCaptureScope && !allowed(Raw, "event-ref-capture")) {
      size_t CallPos = std::min(bareTokenPos(L, "at("),
                                bareTokenPos(L, "after("));
      size_t Cap = CallPos == std::string::npos
                       ? std::string::npos
                       : L.find("[&", CallPos);
      if (Cap != std::string::npos && Cap + 2 < L.size() &&
          (L[Cap + 2] == ']' || L[Cap + 2] == ','))
        Out.push_back({RelPath, LineNo, "event-ref-capture",
                       "event callback captures locals by reference; the "
                       "scheduler may fire it after the enclosing frame is "
                       "gone — capture by value or capture 'this'"});
    }

    if (UsesHostMutex && !allowed(Raw, "raii-guard") &&
        (L.find(".lock()") != std::string::npos ||
         L.find("->lock()") != std::string::npos ||
         L.find(".unlock()") != std::string::npos ||
         L.find("->unlock()") != std::string::npos ||
         hasBareToken(L, "pthread_mutex_lock(") ||
         hasBareToken(L, "pthread_mutex_unlock(")))
      Out.push_back({RelPath, LineNo, "raii-guard",
                     "manual lock()/unlock() in a file using a host mutex; "
                     "pair acquisitions through std::lock_guard / "
                     "std::scoped_lock so early returns and exceptions "
                     "cannot leak the lock"});
  }
}

void dmb::lint::lintErrorTable(const std::string &ErrorH,
                               const std::string &ErrorCpp,
                               std::vector<Violation> &Out) {
  const char *HPath = "src/support/Error.h";
  const char *CppPath = "src/support/Error.cpp";

  std::vector<std::string> Members = parseEnumMembers(ErrorH);
  if (Members.empty()) {
    Out.push_back({HPath, 0, "error-table", "enum class FsError not found"});
    return;
  }

  // Declared count, if present.
  size_t DeclaredCount = 0;
  bool HaveCount = false;
  for (const std::string &L : sanitizeSource(ErrorH)) {
    size_t Pos = L.find("NumFsErrors = ");
    if (Pos == std::string::npos)
      continue;
    DeclaredCount = std::strtoul(L.c_str() + Pos + 14, nullptr, 10);
    HaveCount = true;
    break;
  }
  if (!HaveCount)
    Out.push_back({HPath, 0, "error-table", "NumFsErrors constant missing"});
  else if (DeclaredCount != Members.size())
    Out.push_back({HPath, 0, "error-table",
                   "NumFsErrors is " + std::to_string(DeclaredCount) +
                       " but the enum has " +
                       std::to_string(Members.size()) + " members"});

  // case FsError::X: ... return "NAME"; pairs from the name table.
  std::vector<std::pair<std::string, std::string>> Cases;
  std::vector<std::string> CppLines = splitLines(ErrorCpp);
  std::vector<std::string> CppSanitized = sanitizeSource(ErrorCpp);
  for (size_t I = 0; I < CppLines.size(); ++I) {
    const std::string &L = CppSanitized[I];
    size_t Pos = L.find("case FsError::");
    if (Pos == std::string::npos)
      continue;
    size_t Start = Pos + 14;
    size_t End = Start;
    while (End < L.size() && isIdentChar(L[End]))
      ++End;
    std::string Member = L.substr(Start, End - Start);
    // The returned literal sits on this or one of the next two lines; the
    // sanitizer blanks literal contents, so read the raw text here.
    std::string Name;
    for (size_t J = I; J < CppLines.size() && J < I + 3; ++J) {
      const std::string &RawJ = CppLines[J];
      size_t R = RawJ.find("return \"");
      if (R == std::string::npos)
        continue;
      size_t NStart = R + 8;
      size_t NEnd = RawJ.find('"', NStart);
      if (NEnd != std::string::npos)
        Name = RawJ.substr(NStart, NEnd - NStart);
      break;
    }
    Cases.emplace_back(Member, Name);
  }

  for (const std::string &M : Members) {
    size_t Count = 0;
    for (const auto &C : Cases)
      if (C.first == M)
        ++Count;
    if (Count == 0)
      Out.push_back({CppPath, 0, "error-table",
                     "fsErrorName has no case for FsError::" + M});
    else if (Count > 1)
      Out.push_back({CppPath, 0, "error-table",
                     "fsErrorName has duplicate cases for FsError::" + M});
  }
  for (const auto &C : Cases) {
    if (std::find(Members.begin(), Members.end(), C.first) == Members.end())
      Out.push_back({CppPath, 0, "error-table",
                     "fsErrorName handles unknown member FsError::" +
                         C.first});
    if (C.second.empty())
      Out.push_back({CppPath, 0, "error-table",
                     "case FsError::" + C.first +
                         " does not return a name literal"});
  }
  for (size_t I = 0; I < Cases.size(); ++I)
    for (size_t J = I + 1; J < Cases.size(); ++J)
      if (!Cases[I].second.empty() && Cases[I].second == Cases[J].second)
        Out.push_back({CppPath, 0, "error-table",
                       "duplicate error name '" + Cases[I].second + "'"});
}

std::vector<Violation> dmb::lint::lintTree(const std::string &Root,
                                           size_t *FilesChecked) {
  std::vector<Violation> Out;
  size_t Checked = 0;

  for (const std::string &Rel : analyze::collectSourceFiles(
           Root, {"src", "tests", "bench", "tools"})) {
    std::string Content;
    if (!analyze::readFile(Root + "/" + Rel, Content)) {
      Out.push_back({Rel, 0, "io", "cannot read file"});
      continue;
    }
    ++Checked;
    lintContent(Rel, Content, Out);
  }

  // Cross-file error-table check, when the pair exists in this tree.
  std::string ErrH, ErrCpp;
  if (analyze::readFile(Root + "/src/support/Error.h", ErrH) &&
      analyze::readFile(Root + "/src/support/Error.cpp", ErrCpp))
    lintErrorTable(ErrH, ErrCpp, Out);

  if (FilesChecked)
    *FilesChecked = Checked;
  return Out;
}

std::string dmb::lint::renderViolation(const Violation &V) {
  return analyze::renderFinding(V);
}

const std::vector<std::string> &dmb::lint::lintRuleNames() {
  static const std::vector<std::string> Names = {
      "wall-clock",        "randomness",        "raw-assert",
      "header-guard",      "error-table",       "trace-clock",
      "event-ref-capture", "raii-guard",        "fault-determinism",
      "event-queue",       "suppression-justification", "io"};
  return Names;
}
