//===- tools/lint/LintEngine.h - Repo invariant linter ----------*- C++ -*-===//
//
// Part of the DMetabench reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine behind tools/dmeta-lint: machine-checks the invariants that
/// keep benchmark runs bit-for-bit deterministic (DESIGN.md, key decision
/// 4) and the failure reports replayable.
///
/// Rules:
///  - wall-clock:   no std::chrono / time() / gettimeofday / clock_gettime
///                  in simulation code (src/sim, src/dfs, src/cluster) or
///                  in tests/, bench/ and tools/ — simulated components
///                  read Scheduler::now(), nothing reads the host clock.
///  - randomness:   no std::rand / srand / random_device / mt19937 /
///                  drand48 in the same scopes — all randomness flows
///                  through the seeded support/Random Rng.
///  - raw-assert:   no assert() or <cassert> under src/ or tools/ — use
///                  DMB_ASSERT / DMB_CHECK (support/Assert.h), which stay
///                  armed in release builds and report sim time.
///  - header-guard: headers under src/, bench/ and tools/ use the
///                  canonical DMETABENCH_<DIR>_<FILE>_H guard spelling.
///  - error-table:  the FsError enum, its NumFsErrors count and the
///                  fsErrorName() case table stay in sync with unique
///                  names.
///  - trace-clock:  no direct OpTraceSink calls (beginOp / stamp /
///                  finishOp) in src/sim or src/dfs outside sim/Trace.*
///                  and sim/Scheduler.* — components record trace points
///                  via Scheduler::traceBegin()/traceStamp(), so every
///                  timestamp reads the owning scheduler's clock.
///  - event-ref-capture: no default by-reference lambda capture ([&] or
///                  [&, ...]) passed to Scheduler::at()/after() in src/
///                  or tools/ — the callback outlives the enclosing
///                  frame. tests/ and bench/ are exempt; there the frame
///                  that captures also runs the scheduler to completion.
///  - raii-guard:   in files using a host-thread mutex (std::mutex and
///                  friends, pthread_mutex_t), no manual lock()/unlock()
///                  calls — acquisitions go through std::lock_guard /
///                  std::scoped_lock. SimMutex is exempt: its
///                  scheduler-driven protocol cannot be a scoped guard.
///  - fault-determinism: in files that handle a FaultPolicy in code, every
///                  Rng mention must sit on a line that also names a Seed
///                  — fault rolls are a pure function of
///                  (FaultPolicy.Seed, send time). A sequential Rng
///                  stream ties rolls to event-execution order, and an
///                  ad-hoc seed unties them from the scenario; either
///                  breaks replay and the schedule-perturbation
///                  invariance that verify-schedules checks.
///  - suppression-justification: every suppression comment in src/,
///                  bench/ and tools/ — an allow() for either tool, or a
///                  clang-tidy suppression comment — must carry trailing
///                  justification text explaining why the exception is
///                  sound. A bare allow() silences a checker without
///                  leaving the reviewer anything to check. tests/ are
///                  exempt: lint fixtures there quote bare suppressions
///                  on purpose.
///
/// Comments (including multi-line block comments) and string literal
/// contents (including raw strings) are stripped before token matching
/// (via the shared tools/analyze tokenizer), so prose and fixtures cannot
/// trip the rules. A finding on a line containing
/// "dmeta-lint: allow(<rule>) <why>" is suppressed — the escape hatch for
/// the rare legitimate exception.
///
//===----------------------------------------------------------------------===//

#ifndef DMETABENCH_TOOLS_LINT_LINTENGINE_H
#define DMETABENCH_TOOLS_LINT_LINTENGINE_H

#include "analyze/Diagnostics.h"
#include <cstddef>
#include <string>
#include <vector>

namespace dmb {
namespace lint {

/// One rule violation at a specific source line (Line is 1-based; 0 for
/// whole-file findings such as a missing header guard). The record is the
/// Finding shared with dmeta-analyze, so both tools render and serialize
/// identically.
using Violation = ::dmb::analyze::Finding;

/// Lints one file's \p Content as if it lived at repo-relative \p RelPath
/// (forward slashes). Appends findings to \p Out.
void lintContent(const std::string &RelPath, const std::string &Content,
                 std::vector<Violation> &Out);

/// Cross-file check of src/support/Error.{h,cpp}: enum members vs
/// NumFsErrors vs the fsErrorName() case table.
void lintErrorTable(const std::string &ErrorH, const std::string &ErrorCpp,
                    std::vector<Violation> &Out);

/// Walks src/, tests/, bench/ and tools/ under \p Root, lints every
/// .h/.cpp file (deterministic order) plus the error table.
/// \p FilesChecked, when non-null, receives the number of files scanned.
std::vector<Violation> lintTree(const std::string &Root,
                                size_t *FilesChecked = nullptr);

/// "file:line: [rule] message" for diagnostics output.
std::string renderViolation(const Violation &V);

/// Rule names the linter can emit, for --rule validation.
const std::vector<std::string> &lintRuleNames();

} // namespace lint
} // namespace dmb

#endif // DMETABENCH_TOOLS_LINT_LINTENGINE_H
