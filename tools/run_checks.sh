#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Pre-merge gate for the DMetabench tree. Runs, in order:
#
#   1. a plain RelWithDebInfo build of everything,
#   2. dmeta-lint and dmeta-analyze over the source tree — the analyzer
#      also exports its call graph to build/callgraph.dot (uploaded as a
#      CI artifact) and must finish inside a 20 s wall-time budget, so an
#      interprocedural fixpoint regression fails the gate instead of
#      silently slowing every presubmit,
#   3. the full ctest suite,
#   4. a verify-schedules smoke pass (3 permuted schedules per scenario)
#      and a verify-queues pass proving the heap and calendar event
#      queues execute bit-identical schedules on six tier-1 models,
#   5. an engine-throughput bench smoke at reduced sizes (writes
#      build/BENCH_engine.json; scale curve capped at 4096 clients),
#   6. the fault-injection smoke: bench_fault_degradation (E29) exits
#      nonzero when the op ledger, the post-run fsck or the determinism
#      check fails — and the E30 (sharded) and E31 (write-behind
#      crash-consistency) self-checking benches, whose JSON must
#      reproduce the committed BENCH_E30.json / BENCH_E31.json,
#   7. the trace and fault tests rebuilt under ASan+UBSan (always — the
#      trace layer threads ids through every queue, and the retry path
#      keeps exchange state alive across timer-cancelled attempts; both
#      must stay memory-clean),
#   8. (optionally) the full suite rebuilt under sanitizers.
#
# Exits nonzero on the first failure. Usage:
#
#   tools/run_checks.sh [--sanitize[=address,undefined]] [-j N]
#
# or DMB_CHECK_SANITIZE=address,undefined tools/run_checks.sh. Run it from
# anywhere; paths are resolved relative to the repo root.
#
#===------------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
SANITIZE="${DMB_CHECK_SANITIZE:-}"

while [ $# -gt 0 ]; do
  case "$1" in
    --sanitize) SANITIZE="address,undefined" ;;
    --sanitize=*) SANITIZE="${1#--sanitize=}" ;;
    -j) JOBS="$2"; shift ;;
    -j*) JOBS="${1#-j}" ;;
    -h|--help)
      sed -n '2,30p' "$0"; exit 0 ;;
    *) echo "run_checks.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

step() { echo; echo "== $* =="; }

step "configure + build (build/)"
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"

step "dmeta-lint"
"$ROOT/build/tools/dmeta-lint" --root "$ROOT"

step "dmeta-analyze (+ call-graph export, 20 s budget)"
ANALYZE_T0="$(date +%s)"
"$ROOT/build/tools/dmeta-analyze" --root "$ROOT" \
    --dot "$ROOT/build/callgraph.dot"
ANALYZE_SECS="$(( $(date +%s) - ANALYZE_T0 ))"
# The whole-tree symbol table, call graph and taint fixpoint run in well
# under a second today; 20 s of headroom flags a complexity regression
# without flaking on slow CI runners.
if [ "$ANALYZE_SECS" -gt 20 ]; then
  echo "run_checks.sh: dmeta-analyze took ${ANALYZE_SECS}s (budget 20s)" >&2
  exit 1
fi

step "ctest"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

step "verify-schedules smoke (3 permuted schedules)"
"$ROOT/build/tools/dmetabench" verify-schedules --schedules 3

step "verify-queues (heap vs calendar event queue, six tier-1 models)"
# Both queue implementations must execute bit-identical schedules: the
# verb compares canonical outputs AND executed-event journals, including
# a shallow-wheel variant that forces the overflow path.
"$ROOT/build/tools/dmetabench" verify-queues

step "engine throughput smoke (reduced sizes)"
# Reduced sizes: this only proves the bench runs and writes its JSON; the
# committed BENCH_engine.json numbers come from a full-size run. The
# scale curve is capped at 4096 clients for the smoke.
"$ROOT/build/bench/bench_engine_throughput" --events 500000 \
    --problemsize 2000 --timelimit 2 --label smoke --curve-max 4096 \
    --out "$ROOT/build/BENCH_engine.json"

step "fault-injection smoke (E29: loss window + MDS crash)"
# Self-checking: the binary exits nonzero when any op is lost or double
# applied, the post-run fsck is dirty, or the faulted run is not
# schedule-invariant.
"$ROOT/build/bench/bench_fault_degradation"

step "sharded-metadata smoke (E30: scale-out, rebalance, kill-one-shard)"
# Self-checking: saturation scaling, the threshold curve, the E29-style
# exactly-once ledger with shard 0 crashed mid-run, bit-identical replay
# and verify-schedules invariance all gate the exit code. The run is a
# deterministic simulation, so the JSON it writes must reproduce the
# committed BENCH_E30.json.
"$ROOT/build/bench/bench_sharded_saturation" --out "$ROOT/build/BENCH_E30.json"
cmp "$ROOT/build/BENCH_E30.json" "$ROOT/BENCH_E30.json"

step "write-behind audit smoke (E31: mid-batch crash, exactly-once ledger)"
# Self-checking: the binary exits nonzero when a barrier-confirmed op is
# lost, double-applied or reordered across the mid-batch MDS crash, when
# the deferred and synchronous trees diverge, or when the run is not
# bit-for-bit replayable / schedule-invariant. Deterministic simulation:
# the JSON must reproduce the committed BENCH_E31.json.
"$ROOT/build/bench/bench_writebehind_audit" --out "$ROOT/build/BENCH_E31.json"
cmp "$ROOT/build/BENCH_E31.json" "$ROOT/BENCH_E31.json"

if [ -n "$SANITIZE" ]; then
  step "sanitizer build (build-sanitize/, DMB_SANITIZE=$SANITIZE)"
  cmake -B "$ROOT/build-sanitize" -S "$ROOT" \
        -DDMB_SANITIZE="$SANITIZE" >/dev/null
  cmake --build "$ROOT/build-sanitize" -j "$JOBS"

  step "ctest under sanitizers"
  ctest --test-dir "$ROOT/build-sanitize" --output-on-failure -j "$JOBS"
else
  # Even without --sanitize, the trace and fault tests always run under
  # ASan+UBSan: the trace layer threads ids through every internal queue,
  # and the retry path keeps shared Exchange state alive across
  # retransmits, orphaned replies and a mid-run server crash — exactly
  # the kind of plumbing where lifetime bugs hide.
  step "trace + fault tests under ASan+UBSan (build-sanitize/)"
  cmake -B "$ROOT/build-sanitize" -S "$ROOT" \
        -DDMB_SANITIZE="address,undefined" >/dev/null
  cmake --build "$ROOT/build-sanitize" -j "$JOBS" \
        --target trace_test fault_test
  ctest --test-dir "$ROOT/build-sanitize" --output-on-failure -j "$JOBS" \
        -R '^Trace|^Fault|^Network'
fi

echo
echo "run_checks.sh: all checks passed"
